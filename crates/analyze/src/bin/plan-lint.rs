//! `plan-lint` — CLI front-end for the rustwren-analyze rules (W001–W009),
//! with human and `--format json` machine-readable output so CI can archive
//! plan-lint reports alongside rustwren-lint reports.
//!
//! With no plan flags it lints the built-in suite of canonical paper-shaped
//! plans (the Table 3 tone-map sweep, nested mergesort, CloudSort's
//! shuffle, a hyperparameter-search storm). A single custom plan can be
//! described with flags instead:
//!
//! ```text
//! cargo run -p rustwren-analyze --bin plan-lint -- \
//!     --label sweep --tasks 2000 --nesting-depth 2 --nested-fanout 2 \
//!     --format json --out target/analyze/plan-lint.json
//! ```
//!
//! Exit codes: 0 when no error-severity finding fired (warnings do not
//! fail the run unless `--deny-warnings`), 1 when one did, 2 on usage or
//! I/O errors.

use std::process::ExitCode;
use std::time::Duration;

use rustwren_analyze::report::PlanFindings;
use rustwren_analyze::{analyze, report, CloudProfile, JobPlan, Severity, ShuffleShape};

const USAGE: &str = "\
usage: plan-lint [options]

output:
  --format human|json     report format (default human)
  --out FILE              also write the report to FILE
  --deny-warnings         exit 1 on warnings, not just errors

platform profile (defaults: the paper's IBM Cloud limits):
  --concurrency N         namespace concurrency limit
  --memory-mb N           per-action memory limit
  --exec-secs N           per-invocation execution limit
  --shuffle-budget N      COS op budget for a job's shuffle plane

plan (omit all to lint the built-in canonical suite):
  --label S               plan label
  --tasks N               top-level task count
  --chunk-bytes N         requested partition chunk size
  --max-object-bytes N    largest single input object
  --payload-bytes N       estimated serialized payload per task
  --task-secs F           estimated modeled compute per task
  --nesting-depth N       nested invocation levels below the top tasks
  --nested-fanout N       children per parent at each nested level
  --reducer-fanin N       map outputs consumed by a single reducer
  --retry N               max invocation attempts per task
  --spec-copies N         speculative backup copies per straggler
  --shuffle M:R[:seg][:relay]  shuffle shape (maps:partitions)
  --tenant NS:QUOTA       submitting tenant namespace and concurrency quota
";

struct Args {
    format_json: bool,
    out: Option<String>,
    deny_warnings: bool,
    profile: CloudProfile,
    plan: Option<JobPlan>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        format_json: false,
        out: None,
        deny_warnings: false,
        profile: CloudProfile::default(),
        plan: None,
    };
    let mut plan = JobPlan::new("custom", 0);
    let mut plan_touched = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--format" => {
                args.format_json = match value("--format")?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => args.out = Some(value("--out")?),
            "--deny-warnings" => args.deny_warnings = true,
            "--concurrency" => args.profile.concurrency_limit = parse(&value("--concurrency")?)?,
            "--memory-mb" => args.profile.memory_limit_mb = parse(&value("--memory-mb")?)?,
            "--exec-secs" => {
                args.profile.max_exec_time = Duration::from_secs(parse(&value("--exec-secs")?)?);
            }
            "--shuffle-budget" => {
                args.profile.shuffle_op_budget = parse(&value("--shuffle-budget")?)?;
            }
            "--label" => {
                plan.label = value("--label")?;
                plan_touched = true;
            }
            "--tasks" => {
                plan.tasks = parse(&value("--tasks")?)?;
                plan_touched = true;
            }
            "--chunk-bytes" => {
                plan.chunk_size = Some(parse(&value("--chunk-bytes")?)?);
                plan_touched = true;
            }
            "--max-object-bytes" => {
                plan.max_object_bytes = Some(parse(&value("--max-object-bytes")?)?);
                plan_touched = true;
            }
            "--payload-bytes" => {
                plan.est_payload_bytes = Some(parse(&value("--payload-bytes")?)?);
                plan_touched = true;
            }
            "--task-secs" => {
                let secs: f64 = parse(&value("--task-secs")?)?;
                plan.est_task_duration = Some(Duration::from_secs_f64(secs));
                plan_touched = true;
            }
            "--nesting-depth" => {
                plan.nesting_depth = parse(&value("--nesting-depth")?)?;
                plan_touched = true;
            }
            "--nested-fanout" => {
                plan.nested_fanout = parse(&value("--nested-fanout")?)?;
                plan_touched = true;
            }
            "--reducer-fanin" => {
                plan.reducer_fanin = Some(parse(&value("--reducer-fanin")?)?);
                plan_touched = true;
            }
            "--retry" => {
                plan.retry_max_attempts = parse(&value("--retry")?)?;
                plan_touched = true;
            }
            "--spec-copies" => {
                plan.speculative_copies = parse(&value("--spec-copies")?)?;
                plan_touched = true;
            }
            "--shuffle" => {
                plan.shuffle = Some(parse_shuffle(&value("--shuffle")?)?);
                plan_touched = true;
            }
            "--tenant" => {
                let spec = value("--tenant")?;
                let (ns, quota) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--tenant needs NS:QUOTA, got `{spec}`"))?;
                plan.tenant_namespace = Some(ns.to_owned());
                plan.tenant_quota = Some(parse(quota)?);
                plan_touched = true;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if plan_touched {
        args.plan = Some(plan);
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value `{s}`"))
}

fn parse_shuffle(spec: &str) -> Result<ShuffleShape, String> {
    let mut parts = spec.split(':');
    let maps = parse(parts.next().unwrap_or_default())?;
    let partitions = parse(
        parts
            .next()
            .ok_or_else(|| format!("--shuffle needs M:R, got `{spec}`"))?,
    )?;
    let mut shape = ShuffleShape {
        maps,
        partitions,
        segmented: false,
        via_relay: false,
    };
    for extra in parts {
        match extra {
            "seg" | "segmented" => shape.segmented = true,
            "relay" => shape.via_relay = true,
            other => return Err(format!("unknown shuffle modifier `{other}`")),
        }
    }
    Ok(shape)
}

/// The canonical suite: the paper's workload shapes, including the
/// pathological corners every W-rule exists for.
fn builtin_suite() -> Vec<JobPlan> {
    let mut suite = Vec::new();
    // Table 3 tone-map sweep: 1.9 GB over 2..64 MB chunks.
    for (mb, tasks) in [(64u64, 47usize), (16, 129), (2, 923)] {
        let mut plan = JobPlan::new(format!("tone-map@{mb}MB"), tasks);
        plan.chunk_size = Some(mb << 20);
        plan.max_object_bytes = Some(176_406_762);
        plan.partition_bytes = vec![mb << 20; tasks];
        suite.push(plan);
    }
    // Fig 4 mergesort: nested composition, depth 5, fanout 2.
    let mut mergesort = JobPlan::new("mergesort-d5", 1);
    mergesort.nesting_depth = 5;
    mergesort.nested_fanout = 2;
    suite.push(mergesort);
    // CloudSort-style shuffle on the segmented plane.
    let mut cloudsort = JobPlan::new("cloudsort-seg", 400);
    cloudsort.shuffle = Some(ShuffleShape {
        maps: 400,
        partitions: 100,
        segmented: true,
        via_relay: false,
    });
    suite.push(cloudsort);
    // Hyperparameter storm: 2,000-wide map with retries and speculation.
    let mut storm = JobPlan::new("hyperparam-storm", 2_000);
    storm.retry_max_attempts = 3;
    storm.speculative_copies = 1;
    suite.push(storm);
    // Multi-tenant serving wave: a map sized to the global limit but far
    // beyond the submitting tenant's quota (W009).
    let mut wave = JobPlan::new("serving-wave", 64);
    wave.tenant_namespace = Some("acme".to_owned());
    wave.tenant_quota = Some(8);
    suite.push(wave);
    suite
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("plan-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let plans = match args.plan {
        Some(p) => vec![p],
        None => builtin_suite(),
    };
    let findings: Vec<PlanFindings> = plans
        .iter()
        .map(|p| (p.label.clone(), analyze(p, &args.profile)))
        .collect();
    let rendered = if args.format_json {
        report::json(&findings)
    } else {
        report::human(&findings)
    };
    print!("{rendered}");
    if let Some(out) = &args.out {
        let path = std::path::Path::new(out);
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("plan-lint: creating {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        // The artifact is always JSON regardless of the console format.
        let artifact = if args.format_json {
            rendered
        } else {
            report::json(&findings)
        };
        if let Err(e) = std::fs::write(path, artifact) {
            eprintln!("plan-lint: writing {out}: {e}");
            return ExitCode::from(2);
        }
    }
    let failing = findings.iter().flat_map(|(_, d)| d).any(|d| {
        d.severity == Severity::Error || (args.deny_warnings && d.severity == Severity::Warning)
    });
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
