//! # rustwren-analyze — pre-flight job-plan linter
//!
//! IBM-PyWren jobs fail in expensive ways: a nested map whose parents
//! exhaust the namespace concurrency limit self-deadlocks (parents hold
//! every slot while waiting on children that can never start), a 2,000-way
//! fan-out slams into the 429 throttle, a fat partition blows the 512 MB
//! action memory limit mid-run. All of these are *predictable from the job
//! plan alone* — before a single function is invoked or a single byte is
//! staged to COS.
//!
//! This crate is that predictor. The executor (or a bench binary) hands
//! [`analyze`] a structured [`JobPlan`] plus a [`CloudProfile`] describing
//! the platform limits, and gets back a list of [`Diagnostic`]s:
//!
//! | Rule | Severity | Detects |
//! |------|----------|---------|
//! | W001 | error/warning | nested-concurrency self-deadlock against the concurrency limit |
//! | W002 | warning | throttle storm (429s) from fan-out or invocation-rate bursts |
//! | W003 | error | per-task payload exceeding the action memory limit |
//! | W004 | error/warning | estimated per-task compute vs the execution time limit |
//! | W005 | warning | degenerate partitions (empty chunks, zero tasks) |
//! | W006 | warning | single-reducer fan-in hot-spot |
//! | W007 | warning | retry x speculation amplification of a full-width map beyond the concurrency limit |
//! | W008 | warning | shuffle data-plane COS operations (map fan-out x partition count) beyond the op budget |
//! | W009 | warning | spawn wave exceeding the submitting tenant's concurrency quota |
//!
//! How diagnostics are acted on is the caller's choice via [`AnalyzeMode`]:
//! `Warn` prints them, `Deny` turns error-severity findings into a hard
//! rejection before invocation.
//!
//! ```
//! use rustwren_analyze::{analyze, CloudProfile, JobPlan, PlanHints};
//!
//! let profile = CloudProfile::default(); // paper limits: 1000 / 600 s / 512 MB
//! let mut plan = JobPlan::new("mergesort", 512);
//! plan.nesting_depth = 4;
//! plan.nested_fanout = 2;
//! let diags = analyze(&plan, &profile);
//! assert!(diags.iter().any(|d| d.rule == rustwren_analyze::Rule::W001));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod concurrency;
pub mod report;

pub use concurrency::{merge_reports, LockCycle, LockOrderReport, LostWakeup};

use std::fmt;
use std::time::Duration;

use rustwren_faas::PlatformLimits;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are documented by the module-level table
pub enum Rule {
    W001,
    W002,
    W003,
    W004,
    W005,
    W006,
    W007,
    W008,
    W009,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::W001 => "W001",
            Rule::W002 => "W002",
            Rule::W003 => "W003",
            Rule::W004 => "W004",
            Rule::W005 => "W005",
            Rule::W006 => "W006",
            Rule::W007 => "W007",
            Rule::W008 => "W008",
            Rule::W009 => "W009",
        })
    }
}

/// How bad a finding is.
///
/// `Error` findings describe plans that *cannot* succeed (deadlock,
/// memory-limit kill); [`AnalyzeMode::Deny`] rejects on these.
/// `Warning` findings describe plans that will run degraded (429 retries,
/// stragglers) but can complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Degraded but survivable.
    Warning,
    /// The plan cannot succeed as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// How severe the finding is.
    pub severity: Severity,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// What to change to make the finding go away.
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}\n  help: {}",
            self.rule, self.severity, self.message, self.suggestion
        )
    }
}

/// Platform limits the analyzer lints against.
///
/// Defaults to the paper's IBM Cloud Functions values; build one from a live
/// platform with `CloudProfile::from(functions.limits())`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudProfile {
    /// Maximum concurrent activations per namespace (paper: 1,000).
    pub concurrency_limit: usize,
    /// Maximum invocations accepted per minute.
    pub invocations_per_minute: u64,
    /// Hard per-invocation execution limit (paper: 600 s).
    pub max_exec_time: Duration,
    /// Per-action memory limit in MB (paper: 512 MB).
    pub memory_limit_mb: u32,
    /// COS request budget a single job's shuffle data plane should stay
    /// under (W008). Object stores rate-limit per prefix and bill per
    /// request, so an M×R exchange can dominate a job's cost and latency
    /// long before any hard platform limit trips.
    pub shuffle_op_budget: u64,
}

impl Default for CloudProfile {
    fn default() -> Self {
        CloudProfile {
            concurrency_limit: 1000,
            invocations_per_minute: 1_000_000,
            max_exec_time: Duration::from_secs(600),
            memory_limit_mb: 512,
            shuffle_op_budget: 100_000,
        }
    }
}

impl From<PlatformLimits> for CloudProfile {
    fn from(l: PlatformLimits) -> Self {
        CloudProfile {
            concurrency_limit: l.concurrency_limit,
            invocations_per_minute: l.invocations_per_minute,
            max_exec_time: l.max_exec_time,
            memory_limit_mb: l.memory_limit_mb,
            shuffle_op_budget: CloudProfile::default().shuffle_op_budget,
        }
    }
}

/// The shape of a job's shuffle data plane, for W008's operation estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleShape {
    /// Map tasks feeding the shuffle.
    pub maps: usize,
    /// Partitions (reducers) each map's output is split into.
    pub partitions: usize,
    /// Whether maps spill one concatenated segment per task (true) instead
    /// of one object per (map, reducer) pair (false).
    pub segmented: bool,
    /// Whether the exchange bypasses COS via a direct relay tier.
    pub via_relay: bool,
}

/// How the client will spawn the job's invocations (paper §3.1 / Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnProfile {
    /// The client thread pool POSTs every invocation itself.
    Direct {
        /// Number of client-side invoker threads.
        client_threads: usize,
    },
    /// A remote invoker function fans groups of invocations out from inside
    /// the cloud, so invocation-spawn itself consumes concurrency slots.
    RemoteInvoker {
        /// Invocations delegated to each remote invoker activation.
        group_size: usize,
        /// Threads each remote invoker runs.
        invoker_threads: usize,
    },
}

/// Optional caller-supplied knowledge the executor cannot infer from the
/// task list: expected recursion shape and per-task cost estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanHints {
    /// Estimated serialized payload per task, in bytes.
    pub est_payload_bytes: Option<u64>,
    /// Estimated modeled compute per task.
    pub est_task_duration: Option<Duration>,
    /// Levels of *nested* `call_async`/`map` below the top-level tasks
    /// (0 = flat job).
    pub nesting_depth: u32,
    /// Children each nested level spawns per parent.
    pub nested_fanout: u32,
}

/// A structured description of a job, assembled by the executor before it
/// stages anything, or by hand for what-if analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// Human-readable label (usually the registered function name).
    pub label: String,
    /// Number of top-level tasks the job submits.
    pub tasks: usize,
    /// How invocations are spawned.
    pub spawn: SpawnProfile,
    /// Requested chunk size for data partitioning, if any.
    pub chunk_size: Option<u64>,
    /// Largest single input object, if known.
    pub max_object_bytes: Option<u64>,
    /// Logical byte length of each data partition, if the job is data-driven.
    pub partition_bytes: Vec<u64>,
    /// Estimated serialized payload per task, in bytes.
    pub est_payload_bytes: Option<u64>,
    /// Estimated modeled compute per task.
    pub est_task_duration: Option<Duration>,
    /// Levels of nested invocation below the top-level tasks.
    pub nesting_depth: u32,
    /// Children each nested level spawns per parent.
    pub nested_fanout: u32,
    /// Number of map results a single reducer consumes, if the job has a
    /// reduce stage.
    pub reducer_fanin: Option<usize>,
    /// Maximum invocation attempts per task under the executor's retry
    /// policy (1 = no retries).
    pub retry_max_attempts: u32,
    /// Speculative backup copies launched per straggling task (0 =
    /// speculation disabled).
    pub speculative_copies: u32,
    /// Shape of the job's shuffle data plane, if it has one (W008).
    pub shuffle: Option<ShuffleShape>,
    /// Namespace the job is submitted under, when the platform defines a
    /// tenant for it (W009).
    pub tenant_namespace: Option<String>,
    /// The submitting tenant's concurrency quota, when the platform
    /// defines one (W009).
    pub tenant_quota: Option<usize>,
}

impl JobPlan {
    /// A flat plan with `tasks` top-level tasks and defaults everywhere else.
    pub fn new(label: impl Into<String>, tasks: usize) -> Self {
        JobPlan {
            label: label.into(),
            tasks,
            spawn: SpawnProfile::Direct { client_threads: 64 },
            chunk_size: None,
            max_object_bytes: None,
            partition_bytes: Vec::new(),
            est_payload_bytes: None,
            est_task_duration: None,
            nesting_depth: 0,
            nested_fanout: 0,
            reducer_fanin: None,
            retry_max_attempts: 1,
            speculative_copies: 0,
            shuffle: None,
            tenant_namespace: None,
            tenant_quota: None,
        }
    }

    /// Fold caller-supplied [`PlanHints`] into the plan. Hints only fill
    /// gaps or raise the recursion shape — they never erase what the
    /// executor inferred from the task list.
    pub fn apply_hints(&mut self, hints: &PlanHints) {
        if self.est_payload_bytes.is_none() {
            self.est_payload_bytes = hints.est_payload_bytes;
        }
        if self.est_task_duration.is_none() {
            self.est_task_duration = hints.est_task_duration;
        }
        if hints.nesting_depth > self.nesting_depth {
            self.nesting_depth = hints.nesting_depth;
            self.nested_fanout = hints.nested_fanout;
        }
    }

    /// Total simultaneously-live activations if every level of the nested
    /// tree is in flight at once, split into (parents, leaves).
    ///
    /// Parents matter for deadlock (they hold a concurrency slot *while
    /// blocking* on children); leaves only add throttle pressure.
    fn nested_population(&self) -> (u128, u128) {
        let tasks = self.tasks as u128;
        let fanout = u128::from(self.nested_fanout.max(1));
        let depth = self.nesting_depth;
        if depth == 0 {
            return (0, tasks);
        }
        let mut parents: u128 = 0;
        let mut level = tasks;
        for _ in 0..depth {
            parents = parents.saturating_add(level);
            level = level.saturating_mul(fanout);
        }
        (parents, level)
    }
}

/// Execution mode for the pre-flight analyzer, selected on
/// `ExecutorConfig` or via the `RUSTWREN_ANALYZE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Skip analysis entirely.
    Off,
    /// Run the analyzer and report findings, but never block the job.
    #[default]
    Warn,
    /// Reject the job with an error before invocation if any
    /// [`Severity::Error`] finding fires.
    Deny,
}

impl AnalyzeMode {
    /// Read the mode from the `RUSTWREN_ANALYZE` environment variable
    /// (`off` / `warn` / `deny`, case-insensitive). Unset or unrecognized
    /// values fall back to [`AnalyzeMode::Warn`].
    pub fn from_env() -> Self {
        match std::env::var("RUSTWREN_ANALYZE") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => AnalyzeMode::Off,
                "deny" => AnalyzeMode::Deny,
                _ => AnalyzeMode::Warn,
            },
            Err(_) => AnalyzeMode::Warn,
        }
    }
}

/// Run every rule against `plan` under `profile` and return the findings,
/// most severe first.
pub fn analyze(plan: &JobPlan, profile: &CloudProfile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rule_w001_nested_deadlock(plan, profile, &mut diags);
    rule_w002_throttle_storm(plan, profile, &mut diags);
    rule_w003_payload_memory(plan, profile, &mut diags);
    rule_w004_exec_time(plan, profile, &mut diags);
    rule_w005_degenerate_partitions(plan, &mut diags);
    rule_w006_reducer_fanin(plan, &mut diags);
    rule_w007_retry_speculation_amplification(plan, profile, &mut diags);
    rule_w008_shuffle_op_budget(plan, profile, &mut diags);
    rule_w009_tenant_quota(plan, &mut diags);
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

/// W001: nested self-deadlock. Parents block on children while holding a
/// concurrency slot; if the parents alone can fill the namespace limit, the
/// leaves can never start and the whole tree wedges.
fn rule_w001_nested_deadlock(plan: &JobPlan, profile: &CloudProfile, out: &mut Vec<Diagnostic>) {
    if plan.nesting_depth == 0 || plan.tasks == 0 {
        return;
    }
    let (parents, leaves) = plan.nested_population();
    let limit = profile.concurrency_limit as u128;
    if parents >= limit {
        out.push(Diagnostic {
            rule: Rule::W001,
            severity: Severity::Error,
            message: format!(
                "nested job `{}` self-deadlocks: {} blocking parent activation(s) \
                 (tasks={}, depth={}, fanout={}) fill the concurrency limit of {} \
                 before any leaf can start",
                plan.label, parents, plan.tasks, plan.nesting_depth, plan.nested_fanout, limit
            ),
            suggestion: format!(
                "reduce nesting depth/fanout so blocking parents stay below {limit}, \
                 or flatten the recursion into a single map stage"
            ),
        });
    } else if parents.saturating_add(leaves) > limit {
        out.push(Diagnostic {
            rule: Rule::W001,
            severity: Severity::Warning,
            message: format!(
                "nested job `{}` oversubscribes concurrency: {} parent(s) + {} leaf task(s) \
                 exceed the limit of {}; leaves will queue behind blocked parents and may \
                 deadlock under unlucky scheduling",
                plan.label, parents, leaves, limit
            ),
            suggestion: format!(
                "keep the full nested tree (parents + leaves) within {limit} concurrent \
                 activations, or run the leaf level as a separate flat map"
            ),
        });
    }
}

/// W002: throttle storm. Fan-out beyond the concurrency limit or a burst
/// beyond the per-minute rate limit gets 429s and client retry loops.
fn rule_w002_throttle_storm(plan: &JobPlan, profile: &CloudProfile, out: &mut Vec<Diagnostic>) {
    if plan.tasks > profile.concurrency_limit {
        out.push(Diagnostic {
            rule: Rule::W002,
            severity: Severity::Warning,
            message: format!(
                "job `{}` submits {} tasks against a concurrency limit of {}: expect \
                 429 throttling and retry churn for the overflow",
                plan.label, plan.tasks, profile.concurrency_limit
            ),
            suggestion: format!(
                "split the job into waves of at most {} tasks, or raise the namespace \
                 concurrency limit",
                profile.concurrency_limit
            ),
        });
    }
    let (parents, leaves) = plan.nested_population();
    let total = parents.saturating_add(leaves);
    if total > u128::from(profile.invocations_per_minute) {
        out.push(Diagnostic {
            rule: Rule::W002,
            severity: Severity::Warning,
            message: format!(
                "job `{}` issues {} total invocation(s), above the per-minute rate \
                 limit of {}: the tail of the burst will be rejected with 429s",
                plan.label, total, profile.invocations_per_minute
            ),
            suggestion: "pace invocation spawning across more than one minute".to_string(),
        });
    }
}

/// W003: per-task payload vs the action memory limit. An action that loads
/// a partition larger than its memory allocation is killed by the platform.
fn rule_w003_payload_memory(plan: &JobPlan, profile: &CloudProfile, out: &mut Vec<Diagnostic>) {
    let limit_bytes = u64::from(profile.memory_limit_mb) * 1024 * 1024;
    let biggest = plan
        .est_payload_bytes
        .into_iter()
        .chain(plan.partition_bytes.iter().copied())
        .chain(plan.chunk_size)
        .max();
    if let Some(biggest) = biggest {
        if biggest > limit_bytes {
            out.push(Diagnostic {
                rule: Rule::W003,
                severity: Severity::Error,
                message: format!(
                    "job `{}` hands at least one task {} bytes of input, above the \
                     {} MB action memory limit: the activation will be killed",
                    plan.label, biggest, profile.memory_limit_mb
                ),
                suggestion: format!(
                    "shrink the chunk size so every partition fits in {} MB with \
                     working-set headroom",
                    profile.memory_limit_mb
                ),
            });
        }
    }
}

/// W004: estimated per-task compute vs the execution time limit.
fn rule_w004_exec_time(plan: &JobPlan, profile: &CloudProfile, out: &mut Vec<Diagnostic>) {
    let Some(est) = plan.est_task_duration else {
        return;
    };
    let limit = profile.max_exec_time;
    if est > limit {
        out.push(Diagnostic {
            rule: Rule::W004,
            severity: Severity::Error,
            message: format!(
                "job `{}` estimates {:?} of compute per task, above the hard {:?} \
                 execution limit: every task will be killed mid-flight",
                plan.label, est, limit
            ),
            suggestion: "split each task's work across more, smaller tasks".to_string(),
        });
    } else if est.as_secs_f64() > limit.as_secs_f64() * 0.8 {
        out.push(Diagnostic {
            rule: Rule::W004,
            severity: Severity::Warning,
            message: format!(
                "job `{}` estimates {:?} of compute per task, within 20% of the {:?} \
                 execution limit: stragglers or cold-start overhead may push tasks over",
                plan.label, est, limit
            ),
            suggestion: "leave more headroom below the execution limit".to_string(),
        });
    }
}

/// W005: degenerate partitions — empty jobs, empty chunks, chunk sizes that
/// cannot split the largest object.
fn rule_w005_degenerate_partitions(plan: &JobPlan, out: &mut Vec<Diagnostic>) {
    if plan.tasks == 0 {
        out.push(Diagnostic {
            rule: Rule::W005,
            severity: Severity::Warning,
            message: format!("job `{}` has zero tasks: nothing will run", plan.label),
            suggestion: "check the input listing or partitioner configuration".to_string(),
        });
        return;
    }
    let empty = plan.partition_bytes.iter().filter(|&&b| b == 0).count();
    if empty > 0 {
        out.push(Diagnostic {
            rule: Rule::W005,
            severity: Severity::Warning,
            message: format!(
                "job `{}` has {} empty partition(s) out of {}: those tasks pay full \
                 invocation overhead to process zero bytes",
                plan.label, empty, plan.tasks
            ),
            suggestion: "filter zero-length inputs before partitioning".to_string(),
        });
    }
    if let (Some(chunk), Some(max_obj)) = (plan.chunk_size, plan.max_object_bytes) {
        if chunk >= max_obj && plan.tasks > 1 && !plan.partition_bytes.is_empty() {
            out.push(Diagnostic {
                rule: Rule::W005,
                severity: Severity::Warning,
                message: format!(
                    "job `{}` uses chunk size {} >= largest object ({} bytes): chunking \
                     is a no-op and parallelism comes only from the object count",
                    plan.label, chunk, max_obj
                ),
                suggestion: "drop the chunk size or set it below the object size to \
                             actually split objects"
                    .to_string(),
            });
        }
    }
}

/// W006: single-reducer fan-in hot-spot (paper §4: the reduce stage reads
/// every map output through one activation's NIC).
fn rule_w006_reducer_fanin(plan: &JobPlan, out: &mut Vec<Diagnostic>) {
    const FANIN_THRESHOLD: usize = 100;
    if let Some(fanin) = plan.reducer_fanin {
        if fanin > FANIN_THRESHOLD {
            out.push(Diagnostic {
                rule: Rule::W006,
                severity: Severity::Warning,
                message: format!(
                    "job `{}` funnels {} map output(s) into a single reducer: the \
                     reduce stage serializes on one activation's network bandwidth",
                    plan.label, fanin
                ),
                suggestion: "use a shuffle (partitioned reduce) to spread fan-in across \
                             multiple reducers"
                    .to_string(),
            });
        }
    }
}

/// W007: retry x speculation amplification. A map that fits the
/// concurrency limit on paper can still storm the throttle once the
/// speculation layer doubles the in-flight width and the retry policy
/// multiplies the total invocation volume.
fn rule_w007_retry_speculation_amplification(
    plan: &JobPlan,
    profile: &CloudProfile,
    out: &mut Vec<Diagnostic>,
) {
    let attempts = u128::from(plan.retry_max_attempts.max(1));
    let copies = u128::from(plan.speculative_copies);
    if attempts == 1 && copies == 0 {
        return;
    }
    let tasks = plan.tasks as u128;
    let limit = profile.concurrency_limit as u128;
    // Worst-case simultaneously-live activations: every task plus its
    // backup copies in flight at once.
    let width = tasks.saturating_mul(1 + copies);
    if tasks <= limit && width > limit {
        let volume = width.saturating_mul(attempts);
        out.push(Diagnostic {
            rule: Rule::W007,
            severity: Severity::Warning,
            message: format!(
                "job `{}` fits the concurrency limit at {} task(s), but {} speculative                  cop(ies) per task amplify the in-flight width to {} against a limit of                  {} (worst-case {} invocation(s) with {} retry attempt(s)): backups will                  throttle the very stragglers they are meant to cover",
                plan.label, tasks, copies, width, limit, volume, attempts
            ),
            suggestion: format!(
                "cap speculation so tasks x (1 + copies) stays within {limit}, lower the                  retry budget, or split the map into waves"
            ),
        });
    }
}

/// W008: shuffle data-plane operation budget. The exchange's COS request
/// count scales with map fan-out × partition count — `2·M·R` (a PUT and a
/// GET per pair) on the whole-object layout, `M·(1 + R)` (one segment PUT
/// per map, one slice GET per pair) when segmented — and a big enough
/// product throttles the job's own key prefix and dominates its request
/// bill. A relay exchange stages nothing in COS, so it is never flagged.
fn rule_w008_shuffle_op_budget(plan: &JobPlan, profile: &CloudProfile, out: &mut Vec<Diagnostic>) {
    let Some(shape) = plan.shuffle else {
        return;
    };
    if shape.via_relay {
        return;
    }
    let maps = shape.maps as u128;
    let partitions = shape.partitions as u128;
    let pairs = maps.saturating_mul(partitions);
    let est_ops = if shape.segmented {
        maps.saturating_add(pairs)
    } else {
        pairs.saturating_mul(2)
    };
    let budget = u128::from(profile.shuffle_op_budget);
    if est_ops > budget {
        let layout = if shape.segmented {
            "M x (1 + R) segmented"
        } else {
            "2 x M x R whole-object"
        };
        out.push(Diagnostic {
            rule: Rule::W008,
            severity: Severity::Warning,
            message: format!(
                "job `{}` shuffles {} map output(s) across {} partition(s): ~{} COS \
                 operation(s) on the {} exchange, above the {} op budget — the \
                 data plane will dominate the request bill and throttle its own \
                 key prefix",
                plan.label, shape.maps, shape.partitions, est_ops, layout, budget
            ),
            suggestion: "use the partitioned (segmented) plane with fewer partitions, \
                         add a map-side combiner, or move the exchange to the direct \
                         relay tier"
                .to_string(),
        });
    }
}

/// W009: spawn wave vs the submitting tenant's concurrency quota. A map
/// sized to the *global* concurrency limit still stalls when the tenant's
/// own quota is smaller: the overflow waits in the tenant's bounded
/// admission queue and, past its depth, is shed outright. Speculative
/// copies widen the wave the same way they do for W007.
fn rule_w009_tenant_quota(plan: &JobPlan, out: &mut Vec<Diagnostic>) {
    let Some(quota) = plan.tenant_quota else {
        return;
    };
    let wave = (plan.tasks as u128).saturating_mul(1 + u128::from(plan.speculative_copies));
    if plan.tasks == 0 || wave <= quota as u128 {
        return;
    }
    let ns = plan.tenant_namespace.as_deref().unwrap_or("<unnamed>");
    out.push(Diagnostic {
        rule: Rule::W009,
        severity: Severity::Warning,
        message: format!(
            "job `{}` spawns a wave of {} activation(s) under tenant `{}` whose \
             concurrency quota is {}: the overflow queues in the tenant's bounded \
             admission queue and is shed once the queue fills",
            plan.label, wave, ns, quota
        ),
        suggestion: format!(
            "split the job into waves of at most {quota} task(s), raise tenant \
             `{ns}`'s concurrency quota, or deepen its admission queue"
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(limit: usize) -> CloudProfile {
        CloudProfile {
            concurrency_limit: limit,
            ..CloudProfile::default()
        }
    }

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn w001_fires_on_parent_saturation() {
        // 4 roots, depth 2, fanout 2: parents = 4 + 8 = 12 >= limit 10.
        let mut plan = JobPlan::new("mergesort", 4);
        plan.nesting_depth = 2;
        plan.nested_fanout = 2;
        let diags = analyze(&plan, &profile(10));
        let w001 = diags.iter().find(|d| d.rule == Rule::W001).expect("W001");
        assert_eq!(w001.severity, Severity::Error);
        assert!(w001.message.contains("self-deadlock"), "{}", w001.message);
    }

    #[test]
    fn w001_warns_when_only_leaves_overflow() {
        // parents = 4, leaves = 8; 4 < 10 but 12 > 10.
        let mut plan = JobPlan::new("mergesort", 4);
        plan.nesting_depth = 1;
        plan.nested_fanout = 2;
        let diags = analyze(&plan, &profile(10));
        let w001 = diags.iter().find(|d| d.rule == Rule::W001).expect("W001");
        assert_eq!(w001.severity, Severity::Warning);
    }

    #[test]
    fn w001_silent_on_safe_nesting_and_flat_jobs() {
        let mut plan = JobPlan::new("mergesort", 2);
        plan.nesting_depth = 1;
        plan.nested_fanout = 2;
        // parents = 2, total = 6, limit 10: safe.
        assert!(!rules(&analyze(&plan, &profile(10))).contains(&Rule::W001));
        // Flat job, even a huge one, can never W001.
        let flat = JobPlan::new("flat", 100_000);
        assert!(!rules(&analyze(&flat, &profile(10))).contains(&Rule::W001));
    }

    #[test]
    fn w002_fires_on_fanout_above_concurrency() {
        let plan = JobPlan::new("hyperparam", 2_000);
        let diags = analyze(&plan, &CloudProfile::default());
        assert!(rules(&diags).contains(&Rule::W002));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        let small = JobPlan::new("hyperparam", 900);
        assert!(!rules(&analyze(&small, &CloudProfile::default())).contains(&Rule::W002));
    }

    #[test]
    fn w002_fires_on_rate_limit_burst() {
        let prof = CloudProfile {
            invocations_per_minute: 500,
            concurrency_limit: 5_000,
            ..CloudProfile::default()
        };
        let plan = JobPlan::new("burst", 600);
        let diags = analyze(&plan, &prof);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::W002 && d.message.contains("per-minute")));
        let ok = JobPlan::new("burst", 400);
        assert!(!rules(&analyze(&ok, &prof)).contains(&Rule::W002));
    }

    #[test]
    fn w003_fires_on_oversized_partition() {
        let mut plan = JobPlan::new("sort", 4);
        plan.partition_bytes = vec![1 << 20, 600 << 20];
        let diags = analyze(&plan, &CloudProfile::default());
        let w003 = diags.iter().find(|d| d.rule == Rule::W003).expect("W003");
        assert_eq!(w003.severity, Severity::Error);
        plan.partition_bytes = vec![1 << 20, 64 << 20];
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W003));
    }

    #[test]
    fn w003_considers_chunk_size_and_estimate() {
        let mut plan = JobPlan::new("sort", 4);
        plan.chunk_size = Some(1 << 30);
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W003));
        let mut plan = JobPlan::new("sort", 4);
        plan.est_payload_bytes = Some(1 << 30);
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W003));
    }

    #[test]
    fn w004_error_above_limit_warning_near_limit() {
        let mut plan = JobPlan::new("video", 8);
        plan.est_task_duration = Some(Duration::from_secs(700));
        let diags = analyze(&plan, &CloudProfile::default());
        let w004 = diags.iter().find(|d| d.rule == Rule::W004).expect("W004");
        assert_eq!(w004.severity, Severity::Error);

        plan.est_task_duration = Some(Duration::from_secs(550));
        let diags = analyze(&plan, &CloudProfile::default());
        let w004 = diags.iter().find(|d| d.rule == Rule::W004).expect("W004");
        assert_eq!(w004.severity, Severity::Warning);

        plan.est_task_duration = Some(Duration::from_secs(60));
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W004));
    }

    #[test]
    fn w005_fires_on_empty_partitions_and_zero_tasks() {
        let mut plan = JobPlan::new("scan", 3);
        plan.partition_bytes = vec![10, 0, 20];
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W005));

        let empty = JobPlan::new("scan", 0);
        assert!(rules(&analyze(&empty, &CloudProfile::default())).contains(&Rule::W005));

        let mut ok = JobPlan::new("scan", 3);
        ok.partition_bytes = vec![10, 10, 20];
        assert!(!rules(&analyze(&ok, &CloudProfile::default())).contains(&Rule::W005));
    }

    #[test]
    fn w005_fires_on_noop_chunking() {
        let mut plan = JobPlan::new("scan", 4);
        plan.chunk_size = Some(1 << 20);
        plan.max_object_bytes = Some(512 << 10);
        plan.partition_bytes = vec![512 << 10; 4];
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W005));
    }

    #[test]
    fn w006_fires_on_wide_fanin_only() {
        let mut plan = JobPlan::new("wordcount", 512);
        plan.reducer_fanin = Some(512);
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W006));
        plan.reducer_fanin = Some(32);
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W006));
        plan.reducer_fanin = None;
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W006));
    }

    #[test]
    fn w007_fires_only_when_amplification_crosses_the_limit() {
        // 600 tasks fit a limit of 1000, but one backup copy per task makes
        // 1200 simultaneously-live activations.
        let mut plan = JobPlan::new("map", 600);
        plan.speculative_copies = 1;
        plan.retry_max_attempts = 3;
        let diags = analyze(&plan, &CloudProfile::default());
        let w007 = diags.iter().find(|d| d.rule == Rule::W007).expect("W007");
        assert_eq!(w007.severity, Severity::Warning);
        assert!(w007.message.contains("1200"), "{}", w007.message);

        // Amplified width within the limit: silent.
        let mut ok = JobPlan::new("map", 400);
        ok.speculative_copies = 1;
        ok.retry_max_attempts = 3;
        assert!(!rules(&analyze(&ok, &CloudProfile::default())).contains(&Rule::W007));

        // No amplification features enabled: silent even when wide (that is
        // W002's job).
        let wide = JobPlan::new("map", 2_000);
        assert!(!rules(&analyze(&wide, &CloudProfile::default())).contains(&Rule::W007));

        // Already wider than the limit without speculation: W002 owns it.
        let mut over = JobPlan::new("map", 1_500);
        over.speculative_copies = 1;
        assert!(!rules(&analyze(&over, &CloudProfile::default())).contains(&Rule::W007));
    }

    #[test]
    fn w008_fires_on_over_partitioned_whole_object_plan() {
        // 2,000 maps × 128 partitions on the whole-object layout:
        // 2 × 2,000 × 128 = 512,000 ops against a 100,000 budget.
        let mut plan = JobPlan::new("sort", 2_000);
        plan.shuffle = Some(ShuffleShape {
            maps: 2_000,
            partitions: 128,
            segmented: false,
            via_relay: false,
        });
        let diags = analyze(&plan, &CloudProfile::default());
        let w008 = diags.iter().find(|d| d.rule == Rule::W008).expect("W008");
        assert_eq!(w008.severity, Severity::Warning);
        assert!(w008.message.contains("512000"), "{}", w008.message);
    }

    #[test]
    fn w008_respects_segmentation_relay_and_budget() {
        // The same fan-out segmented: 2,000 × (1 + 128) = 258,000 — still
        // over budget, but less than half the whole-object count.
        let mut plan = JobPlan::new("sort", 2_000);
        plan.shuffle = Some(ShuffleShape {
            maps: 2_000,
            partitions: 128,
            segmented: true,
            via_relay: false,
        });
        let diags = analyze(&plan, &CloudProfile::default());
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::W008 && d.message.contains("258000")));

        // Relay exchange: nothing staged in COS, never flagged.
        let mut relay = plan.clone();
        relay.shuffle = Some(ShuffleShape {
            maps: 2_000,
            partitions: 128,
            segmented: true,
            via_relay: true,
        });
        assert!(!rules(&analyze(&relay, &CloudProfile::default())).contains(&Rule::W008));

        // A modest shuffle stays silent: 100 × (1 + 16) = 1,700 ops.
        let mut small = JobPlan::new("sort", 100);
        small.shuffle = Some(ShuffleShape {
            maps: 100,
            partitions: 16,
            segmented: true,
            via_relay: false,
        });
        assert!(!rules(&analyze(&small, &CloudProfile::default())).contains(&Rule::W008));

        // No shuffle stage at all: silent.
        let flat = JobPlan::new("map", 2_000);
        assert!(!rules(&analyze(&flat, &CloudProfile::default())).contains(&Rule::W008));
    }

    #[test]
    fn w009_fires_when_the_wave_exceeds_the_tenant_quota() {
        let mut plan = JobPlan::new("map", 32);
        plan.tenant_namespace = Some("acme".into());
        plan.tenant_quota = Some(8);
        let diags = analyze(&plan, &CloudProfile::default());
        let w009 = diags.iter().find(|d| d.rule == Rule::W009).expect("W009");
        assert_eq!(w009.severity, Severity::Warning);
        assert!(w009.message.contains("acme"), "{}", w009.message);
        assert!(w009.message.contains("quota is 8"), "{}", w009.message);

        // A wave within the quota is silent.
        plan.tasks = 8;
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W009));

        // No tenant on the plan (the default namespace with no TenantConfig):
        // silent even when wide — that is W002's territory.
        let wide = JobPlan::new("map", 5_000);
        assert!(!rules(&analyze(&wide, &CloudProfile::default())).contains(&Rule::W009));
    }

    #[test]
    fn w009_counts_speculative_copies_toward_the_wave() {
        // 6 tasks fit a quota of 8 on paper, but one backup copy per task
        // makes the worst-case wave 12.
        let mut plan = JobPlan::new("map", 6);
        plan.tenant_namespace = Some("acme".into());
        plan.tenant_quota = Some(8);
        plan.speculative_copies = 1;
        assert!(rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W009));
        plan.speculative_copies = 0;
        assert!(!rules(&analyze(&plan, &CloudProfile::default())).contains(&Rule::W009));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut plan = JobPlan::new("mixed", 2_000);
        plan.nesting_depth = 2;
        plan.nested_fanout = 2;
        plan.partition_bytes = vec![600 << 20];
        let diags = analyze(&plan, &CloudProfile::default());
        assert!(diags.len() >= 3);
        let first_warning = diags.iter().position(|d| d.severity == Severity::Warning);
        let last_error = diags.iter().rposition(|d| d.severity == Severity::Error);
        if let (Some(w), Some(e)) = (first_warning, last_error) {
            assert!(e < w, "errors must precede warnings: {diags:#?}");
        }
    }

    #[test]
    fn profile_from_platform_limits() {
        let limits = PlatformLimits {
            concurrency_limit: 7,
            invocations_per_minute: 42,
            max_exec_time: Duration::from_secs(9),
            memory_limit_mb: 128,
        };
        let prof = CloudProfile::from(limits);
        assert_eq!(prof.concurrency_limit, 7);
        assert_eq!(prof.invocations_per_minute, 42);
        assert_eq!(prof.max_exec_time, Duration::from_secs(9));
        assert_eq!(prof.memory_limit_mb, 128);
    }

    #[test]
    fn apply_hints_fills_gaps_without_clobbering() {
        let mut plan = JobPlan::new("j", 4);
        plan.est_payload_bytes = Some(100);
        plan.apply_hints(&PlanHints {
            est_payload_bytes: Some(999),
            est_task_duration: Some(Duration::from_secs(5)),
            nesting_depth: 3,
            nested_fanout: 2,
        });
        assert_eq!(plan.est_payload_bytes, Some(100)); // executor wins
        assert_eq!(plan.est_task_duration, Some(Duration::from_secs(5)));
        assert_eq!(plan.nesting_depth, 3);
        assert_eq!(plan.nested_fanout, 2);
    }

    #[test]
    fn diagnostic_display_includes_rule_and_help() {
        let d = Diagnostic {
            rule: Rule::W001,
            severity: Severity::Error,
            message: "boom".into(),
            suggestion: "fix it".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("W001 error: boom"));
        assert!(s.contains("help: fix it"));
    }

    #[test]
    fn analyze_mode_default_and_env_parsing() {
        assert_eq!(AnalyzeMode::default(), AnalyzeMode::Warn);
        // from_env reads the live environment; only exercise the unset path
        // deterministically here (CI sets RUSTWREN_ANALYZE in a dedicated job).
        std::env::remove_var("RUSTWREN_ANALYZE");
        assert_eq!(AnalyzeMode::from_env(), AnalyzeMode::Warn);
    }
}
