//! Property tests tying the analyzer's verdicts to actual platform
//! behavior, in the direction the rules guarantee:
//!
//! * a nested plan the analyzer *passes* (no W001 error) never deadlocks
//!   when run on a queue-mode platform with the profiled concurrency limit;
//! * a fan-out the analyzer flags as a throttle storm (W002) really
//!   observes 429 rejections when slow tasks pile onto a small limit.
//!
//! The flagged-deadlock direction is deliberately not asserted: whether an
//! oversubscribed tree actually wedges depends on scheduling order, which
//! is exactly why W001's warning tier exists.

use bytes::Bytes;
use proptest::prelude::*;
use rustwren_analyze::{analyze, CloudProfile, JobPlan, Rule, Severity};
use rustwren_faas::{ActionConfig, ActivationCtx, CloudFunctions, PlatformConfig, PlatformStats};
use rustwren_sim::Kernel;
use rustwren_store::ObjectStore;

/// Runs `tasks` roots of a `fanout`-ary invocation tree of the given
/// `depth` on a fresh platform, returning the final platform stats. Each
/// non-leaf node invokes its children and blocks on their completion —
/// the shape W001 reasons about.
fn run_tree(config: PlatformConfig, tasks: usize, depth: u32, fanout: u32) -> PlatformStats {
    let kernel = Kernel::new();
    let store = ObjectStore::new(&kernel);
    let faas = CloudFunctions::new(&kernel, &store, config);
    let faas2 = faas.clone();
    faas.register_action(
        "node",
        ActionConfig::default(),
        move |ctx: &ActivationCtx, payload: Bytes| {
            let depth = payload.first().copied().unwrap_or(0);
            if depth > 0 {
                let ids: Vec<_> = (0..fanout)
                    .map(|_| faas2.invoke("node", Bytes::from(vec![depth - 1])))
                    .collect::<Result<_, _>>()
                    .map_err(|e| rustwren_faas::ActionError(e.to_string()))?;
                for id in ids {
                    ctx.platform().wait(id);
                }
            }
            Ok(Bytes::new())
        },
    )
    .expect("node registers");
    kernel.run("client", || {
        let ids: Vec<_> = (0..tasks)
            .map(|_| {
                faas.invoke("node", Bytes::from(vec![depth as u8]))
                    .expect("root accepted")
            })
            .collect();
        for id in ids {
            faas.wait(id);
        }
    });
    faas.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of the W001 pass verdict: if the analyzer raises no W001
    /// error for a nested plan, running that exact tree on a queue-mode
    /// platform with the same concurrency limit completes every
    /// activation (no deadlock, no throttling losses).
    #[test]
    fn passed_nested_plans_complete(params in (2usize..7, 1usize..4, 0u32..3, 1u32..4)) {
        let (limit, tasks, depth, fanout) = params;
        let mut plan = JobPlan::new("tree", tasks);
        plan.nesting_depth = depth;
        plan.nested_fanout = fanout;
        let profile = CloudProfile {
            concurrency_limit: limit,
            ..CloudProfile::default()
        };
        let flagged = analyze(&plan, &profile)
            .iter()
            .any(|d| d.rule == Rule::W001 && d.severity == Severity::Error);
        if !flagged {
            let stats = run_tree(
                PlatformConfig {
                    concurrency_limit: limit,
                    queue_on_concurrency_limit: true,
                    ..PlatformConfig::default()
                },
                tasks,
                depth,
                fanout,
            );
            // Completing `kernel.run` at all already proves no deadlock —
            // the kernel panics on one. Check the books balanced too.
            prop_assert_eq!(stats.completed, stats.submitted);
            prop_assert_eq!(stats.throttled, 0);
        }
    }

    /// W002-flagged fan-outs really throttle: more slow tasks than the
    /// namespace admits (reject mode) must observe at least one 429.
    #[test]
    fn flagged_throttle_storms_observe_429s(params in (1usize..5, 6usize..20)) {
        // The ranges guarantee tasks (>= 6) > limit (<= 4).
        let (limit, tasks) = params;
        let plan = JobPlan::new("storm", tasks);
        let profile = CloudProfile {
            concurrency_limit: limit,
            ..CloudProfile::default()
        };
        let flagged = analyze(&plan, &profile)
            .iter()
            .any(|d| d.rule == Rule::W002);
        prop_assert!(flagged, "tasks {} > limit {} must flag W002", tasks, limit);

        let kernel = Kernel::new();
        let store = ObjectStore::new(&kernel);
        let faas = CloudFunctions::new(
            &kernel,
            &store,
            PlatformConfig {
                concurrency_limit: limit,
                ..PlatformConfig::default()
            },
        );
        faas.register_action(
            "slow",
            ActionConfig::default(),
            |ctx: &ActivationCtx, _p: Bytes| {
                ctx.charge(std::time::Duration::from_secs(20));
                Ok(Bytes::new())
            },
        )
        .expect("slow registers");
        let throttled = kernel.run("client", || {
            // Burst-fire the whole job; with every slot full for 20 s the
            // overflow is rejected with 429s.
            let mut throttled = 0u64;
            for _ in 0..tasks {
                if faas.invoke("slow", Bytes::new()).is_err() {
                    throttled += 1;
                }
            }
            throttled
        });
        prop_assert!(throttled > 0, "no 429 observed for {} tasks over limit {}", tasks, limit);
        prop_assert_eq!(throttled, faas.stats().throttled);
    }
}
