//! Planted concurrency bugs: the model checker must find each one within a
//! fixed budget, shrink the failing schedule, and the shrunk trace must
//! replay to the *same* failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rustwren_sim::Kernel;
use rustwren_verify::{explore, replay, Budget, Failure, Strategy};

/// Base seed: `RUSTWREN_VERIFY_SEED` when set (the CI matrix), mixed with a
/// per-test default so the suites stay decorrelated.
fn seed(default: u64) -> u64 {
    std::env::var("RUSTWREN_VERIFY_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or(default, |s| s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ default)
}

fn budget(schedules: usize, default_seed: u64, preempt: f64, label: &str) -> Budget {
    Budget {
        schedules,
        strategy: Strategy::Random {
            seed: seed(default_seed),
            preempt_probability: preempt,
        },
        label: label.to_string(),
    }
}

/// Replays the shrunk schedule and asserts it reproduces the deadlock the
/// explorer reported.
fn assert_deadlock_replays<R: std::fmt::Debug>(program: fn(Kernel) -> R, failure: &Failure) {
    assert_eq!(failure.signature, "simulation deadlock", "{failure}");
    assert!(
        failure.shrunk.entries.len() <= failure.trace.entries.len(),
        "shrinking must not grow the trace"
    );
    let err =
        replay(program, &failure.schedule()).expect_err("shrunk schedule must still deadlock");
    assert!(
        err.starts_with("simulation deadlock"),
        "replay diverged from the planted failure: {err}"
    );
}

// ---------------------------------------------------------------------------
// Planted bug 1: AB-BA double lock
// ---------------------------------------------------------------------------

/// Two threads acquire the same two shim mutexes in opposite orders. A
/// single preemption between the first and second acquisition deadlocks.
fn abba(kernel: Kernel) {
    kernel.run("client", || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = rustwren_sim::spawn("t1", move || {
            let ga = a1.lock();
            let gb = b1.lock();
            *ga + *gb
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = rustwren_sim::spawn("t2", move || {
            let gb = b2.lock();
            let ga = a2.lock();
            *ga + *gb
        });
        t1.join();
        t2.join();
    });
}

#[test]
fn abba_deadlock_found_shrunk_and_replayed() {
    let report = explore(abba, &budget(300, 7, 0.25, "planted-abba"));
    let failure = report
        .failure
        .as_ref()
        .expect("AB-BA deadlock not found within 300 schedules");
    assert_deadlock_replays(abba, failure);
}

/// Even when no explored schedule happens to deadlock (preemption disabled,
/// so each thread takes both locks without interleaving), the merged
/// lock-order graphs still expose the AB-BA cycle.
#[test]
fn abba_cycle_reported_on_passing_schedules() {
    let report = explore(abba, &budget(30, 3, 0.0, "planted-abba-passing"));
    assert!(
        report.failure.is_none(),
        "without preemption no schedule should deadlock: {report}"
    );
    assert!(
        !report.lock_orders.cycles.is_empty(),
        "latent AB-BA cycle must be reported: {report}"
    );
    assert!(!report.ok());
}

// ---------------------------------------------------------------------------
// Planted bug 2: lost notify_one
// ---------------------------------------------------------------------------

/// The waiter checks an atomic flag and then waits on the condvar, but the
/// notifier does not hold the mutex while setting the flag — so the notify
/// can land in the window between the check and the wait registration and
/// be dropped, leaving the waiter blocked forever.
fn lost_notify(kernel: Kernel) {
    kernel.run("client", || {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));

        let (m1, cv1, f1) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&flag));
        let waiter = rustwren_sim::spawn("waiter", move || {
            let mut g = m1.lock();
            if !f1.load(Ordering::SeqCst) {
                cv1.wait(&mut g);
            }
        });
        let notifier = rustwren_sim::spawn("notifier", move || {
            flag.store(true, Ordering::SeqCst);
            cv.notify_one();
        });
        waiter.join();
        notifier.join();
    });
}

#[test]
fn lost_notify_found_shrunk_and_replayed() {
    let report = explore(lost_notify, &budget(300, 11, 0.25, "planted-lost-notify"));
    let failure = report
        .failure
        .as_ref()
        .expect("lost notify_one not found within 300 schedules");
    assert_deadlock_replays(lost_notify, failure);
}

// ---------------------------------------------------------------------------
// Planted bug 3: check-then-act counter
// ---------------------------------------------------------------------------

/// Each incrementer reads the counter under the lock, releases it, and
/// writes back `read + 1` under a second acquisition — a lost-update race.
/// The FIFO reference run yields 2; a preempted schedule can yield 1.
fn racy_counter(kernel: Kernel) -> u64 {
    kernel.run("client", || {
        let counter = Arc::new(Mutex::new(0u64));
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let counter = Arc::clone(&counter);
                rustwren_sim::spawn(format!("inc{i}"), move || {
                    let v = *counter.lock();
                    *counter.lock() = v + 1;
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let v = *counter.lock();
        v
    })
}

#[test]
fn racy_counter_mismatch_found_shrunk_and_replayed() {
    let report = explore(racy_counter, &budget(300, 19, 0.25, "planted-counter"));
    let failure = report
        .failure
        .as_ref()
        .expect("check-then-act lost update not found within 300 schedules");
    assert_eq!(failure.signature, "result mismatch", "{failure}");
    assert!(failure.shrunk.entries.len() <= failure.trace.entries.len());

    // The shrunk schedule must still produce the wrong answer.
    let replayed = replay(racy_counter, &failure.schedule())
        .expect("replaying a result-mismatch schedule must complete");
    assert_ne!(replayed, 2, "shrunk schedule no longer loses the update");
}

#[test]
fn racy_counter_found_by_bounded_dfs() {
    let report = explore(
        racy_counter,
        &Budget::dfs(400, 1).with_label("planted-counter-dfs"),
    );
    let failure = report
        .failure
        .expect("bounded-exhaustive search must find the lost update");
    assert_eq!(failure.signature, "result mismatch", "{failure}");
}
