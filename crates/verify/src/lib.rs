//! # rustwren-verify — schedule-exploration model checker
//!
//! Runs a simulated program many times under adversarial schedulers and
//! checks three invariants on every run:
//!
//! * **No panic** — including kernel-detected deadlocks, which surface as
//!   panics carrying the wait-for-graph report.
//! * **Bitwise result equality** — every schedule must produce exactly the
//!   result of the reference FIFO run; any divergence is a race made
//!   visible.
//! * **Clean lock orders** — the per-run lock-order graphs recorded by the
//!   kernel are merged across all explored schedules and searched for
//!   AB-BA cycles and lost-wakeup condvar patterns, so a latent deadlock is
//!   reported even when every explored schedule passed.
//!
//! Every run records its scheduling decisions as a sparse
//! [`ScheduleTrace`]. When a run fails, the trace is minimized by delta
//! debugging ([ddmin]) — each candidate subset is *replayed* and kept only
//! if it reproduces the same failure signature — and the result is printed
//! as a `RUSTWREN_SCHEDULE=<token>` one-liner: export that variable and
//! re-run the same test binary to step through the exact failing
//! interleaving under a debugger.
//!
//! ```
//! use rustwren_verify::{explore, Budget};
//!
//! let report = explore(
//!     |kernel| {
//!         kernel.run("client", || {
//!             let h = rustwren_sim::spawn("worker", || 21 * 2);
//!             h.join()
//!         })
//!     },
//!     &Budget::random(20, 7),
//! );
//! assert!(report.ok(), "{report}");
//! ```
//!
//! [ddmin]: https://doi.org/10.1109/32.988498

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock, PoisonError};

use rustwren_analyze::{merge_reports, LockOrderReport};
use rustwren_sim::{
    Choice, ChoiceKind, FifoScheduler, Kernel, RandomScheduler, ReplayScheduler, RunOrderReport,
    ScheduleTrace, Scheduler, TraceEntry,
};

/// Hard cap on shrink replays, so delta debugging cannot dominate a test
/// run even for pathological traces.
const MAX_SHRINK_REPLAYS: usize = 600;

/// How schedules are generated.
#[derive(Debug, Clone, Copy)]
pub enum Strategy {
    /// Seeded PCT-style randomized search: good bug-finding per schedule,
    /// scales to long programs.
    Random {
        /// Base seed; schedule `i` uses `seed + i`.
        seed: u64,
        /// Per-probe preemption probability (0.0..=1.0).
        preempt_probability: f64,
    },
    /// Bounded-preemption exhaustive search (iterative-deepening DFS over
    /// the choice tree) with adjacent-independent-transposition pruning.
    /// Only viable for small programs.
    Dfs {
        /// Maximum preemptions injected per schedule.
        max_preemptions: usize,
    },
}

/// How much exploration to buy.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Maximum schedules to run (the reference FIFO run is extra).
    pub schedules: usize,
    /// Schedule generation strategy.
    pub strategy: Strategy,
    /// Label used for trace artifacts written to `RUSTWREN_TRACE_DIR`.
    pub label: String,
}

impl Budget {
    /// Randomized exploration of `schedules` schedules from `seed`.
    pub fn random(schedules: usize, seed: u64) -> Budget {
        Budget {
            schedules,
            strategy: Strategy::Random {
                seed,
                preempt_probability: 0.1,
            },
            label: "explore".to_string(),
        }
    }

    /// Bounded-exhaustive exploration of up to `schedules` schedules with
    /// at most `max_preemptions` injected preemptions each.
    pub fn dfs(schedules: usize, max_preemptions: usize) -> Budget {
        Budget {
            schedules,
            strategy: Strategy::Dfs { max_preemptions },
            label: "explore".to_string(),
        }
    }

    /// Names the exploration for `RUSTWREN_TRACE_DIR` artifacts.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Budget {
        self.label = label.into();
        self
    }
}

/// A failing schedule, minimized and replayable.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The full failure text (panic payload or result-mismatch
    /// description), including the kernel-appended schedule token.
    pub message: String,
    /// The stable first line used to match failures across replays.
    pub signature: String,
    /// The complete trace of the failing run.
    pub trace: ScheduleTrace,
    /// The delta-debugged minimal trace that still reproduces `signature`.
    pub shrunk: ScheduleTrace,
    /// Replays spent shrinking.
    pub shrink_replays: usize,
}

impl Failure {
    /// The `RUSTWREN_SCHEDULE` token of the minimal failing schedule.
    pub fn schedule(&self) -> String {
        self.shrunk.token()
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.signature)?;
        writeln!(
            f,
            "  replay: RUSTWREN_SCHEDULE={} ({} decision(s), shrunk from {} in {} replay(s))",
            self.shrunk.token(),
            self.shrunk.entries.len(),
            self.trace.entries.len(),
            self.shrink_replays
        )?;
        write!(f, "{}", self.message)
    }
}

/// The outcome of [`explore`].
#[derive(Debug)]
pub struct Report {
    /// Schedules actually run (including the FIFO reference, excluding
    /// shrink replays).
    pub schedules: usize,
    /// The first failing schedule found, if any.
    pub failure: Option<Failure>,
    /// Lock-order analysis merged over every completed run.
    pub lock_orders: LockOrderReport,
}

impl Report {
    /// True when no schedule failed *and* the merged lock-order graphs are
    /// free of cycles and lost-wakeup candidates.
    pub fn ok(&self) -> bool {
        self.failure.is_none() && self.lock_orders.is_clean()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            Some(fail) => write!(f, "FAILED after {} schedule(s): {fail}", self.schedules),
            None => write!(
                f,
                "{} schedule(s) passed; {}",
                self.schedules, self.lock_orders
            ),
        }
    }
}

/// Renders the dynamic lock-exercise inventory consumed by rustwren-lint's
/// L007 and L011 cross-checks: `runs N`, one `kind <name> <count>` line per
/// sync-object class (count = distinct instances exercised), an `edges N`
/// count followed by one `edge <held> <acquired>` line per kind-level
/// lock-order edge the schedules drove, and informational `key` lines
/// listing each instance's stable merge key.
pub fn lock_exercise_text(report: &Report) -> String {
    let mut kinds: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for inst in &report.lock_orders.instances {
        *kinds.entry(inst.kind.to_string()).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str(
        "# rustwren-verify lock-exercise inventory (consumed by rustwren-lint L007/L011)\n",
    );
    out.push_str(&format!("runs {}\n", report.lock_orders.runs));
    for (kind, count) in &kinds {
        out.push_str(&format!("kind {kind} {count}\n"));
    }
    out.push_str(&format!("edges {}\n", report.lock_orders.kind_edges.len()));
    for (held, acquired) in &report.lock_orders.kind_edges {
        out.push_str(&format!("edge {held} {acquired}\n"));
    }
    for inst in &report.lock_orders.instances {
        out.push_str(&format!("key {}\n", inst.key));
    }
    out
}

/// Writes [`lock_exercise_text`] to `path`, creating parent directories.
///
/// # Errors
///
/// Any I/O failure creating the directories or writing the file.
pub fn write_lock_exercise(report: &Report, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, lock_exercise_text(report))
}

// ---------------------------------------------------------------------------
// Quiet panic hook
// ---------------------------------------------------------------------------

static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// While any exploration is active, silences the default panic printout for
/// panics raised *on exploring simulated threads* — they are the expected
/// mechanism of schedule search, and thousands of backtraces would bury the
/// one report that matters. All other panics print as usual.
struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.load(Ordering::Relaxed) > 0 && rustwren_sim::exploring() {
                    return;
                }
                prev(info);
            }));
        });
        QUIET_DEPTH.fetch_add(1, Ordering::Relaxed);
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Single-run harness
// ---------------------------------------------------------------------------

struct RunOutcome<R> {
    /// `Err` carries the panic payload text.
    result: Result<R, String>,
    trace: ScheduleTrace,
    orders: Option<RunOrderReport>,
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_once<R, F>(program: &F, scheduler: Box<dyn Scheduler>, record_orders: bool) -> RunOutcome<R>
where
    F: Fn(Kernel) -> R,
{
    let kernel = Kernel::new();
    kernel.set_scheduler(scheduler);
    if record_orders {
        kernel.record_lock_orders();
    }
    let result = panic::catch_unwind(AssertUnwindSafe(|| program(kernel.clone())));
    if result.is_err() {
        // A failing run's spawned threads are still unwinding on their own
        // OS threads (the deadlock broadcast wakes each into a re-raise,
        // and nothing joins them once the client unwound). Wait for them to
        // deregister — their panic hooks run before that — so their
        // expected panics cannot outlive the quiet window and leak a
        // backtrace after exploration returns.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while kernel.live_threads() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
    }
    RunOutcome {
        result: result.map_err(|p| panic_text(p.as_ref())),
        trace: kernel.schedule_trace().as_ref().clone(),
        orders: kernel.take_order_report(),
    }
}

/// The stable identity of a failure: its first line for panics, a fixed
/// marker for result mismatches (the mismatching values may differ between
/// the original failure and a shrunk replay) and for deadlocks (whose
/// header embeds the virtual timestamp, which legitimately varies with the
/// schedule).
fn signature(message: &str) -> String {
    if message.starts_with("result mismatch") {
        return "result mismatch".to_string();
    }
    let first = message.lines().next().unwrap_or(message);
    if first.starts_with("simulation deadlock") {
        return "simulation deadlock".to_string();
    }
    first.to_string()
}

// ---------------------------------------------------------------------------
// explore
// ---------------------------------------------------------------------------

/// Explores schedules of `program` under `budget`.
///
/// `program` receives a fresh [`Kernel`] per schedule (pre-configured with
/// the exploration scheduler and lock-order recording) and is expected to
/// drive it with [`Kernel::run`] and return the job's result. The first,
/// reference run uses the plain FIFO scheduler and defines the expected
/// result; every explored schedule must reproduce it bitwise.
pub fn explore<R, F>(program: F, budget: &Budget) -> Report
where
    R: PartialEq + fmt::Debug,
    F: Fn(Kernel) -> R,
{
    let _quiet = QuietGuard::new();
    let mut order_reports = Vec::new();

    let baseline = run_once(&program, Box::new(FifoScheduler), true);
    order_reports.extend(baseline.orders);
    let expected = match baseline.result {
        Ok(r) => r,
        Err(message) => {
            // Fails even without exploration: report with the (empty-ish)
            // FIFO trace; nothing to shrink.
            let failure = Failure {
                signature: signature(&message),
                message,
                trace: baseline.trace.clone(),
                shrunk: baseline.trace,
                shrink_replays: 0,
            };
            write_artifact(&budget.label, &failure);
            return Report {
                schedules: 1,
                failure: Some(failure),
                lock_orders: merge_reports(&order_reports),
            };
        }
    };

    let mut schedules = 1;
    let run_schedule = |scheduler: Box<dyn Scheduler>,
                        order_reports: &mut Vec<RunOrderReport>,
                        schedules: &mut usize|
     -> Result<Option<Failure>, ()> {
        let out = run_once(&program, scheduler, true);
        *schedules += 1;
        order_reports.extend(out.orders);
        let message = match out.result {
            Err(m) => m,
            Ok(r) if r != expected => {
                format!(
                    "result mismatch: expected {expected:?}, got {r:?}\n\
                     schedule: RUSTWREN_SCHEDULE={}",
                    out.trace.token()
                )
            }
            Ok(_) => return Ok(None),
        };
        Ok(Some(shrink(&program, &expected, out.trace, message)))
    };

    let failure = match budget.strategy {
        Strategy::Random {
            seed,
            preempt_probability,
        } => {
            let mut found = None;
            for i in 0..budget.schedules {
                let sched = RandomScheduler::new(seed.wrapping_add(i as u64))
                    .with_preempt_probability(preempt_probability);
                if let Ok(Some(f)) =
                    run_schedule(Box::new(sched), &mut order_reports, &mut schedules)
                {
                    found = Some(f);
                    break;
                }
            }
            found
        }
        Strategy::Dfs { max_preemptions } => {
            let mut found = None;
            let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
            while let Some(prefix) = stack.pop() {
                if schedules > budget.schedules {
                    break;
                }
                let log = Arc::new(StdMutex::new(Vec::new()));
                let sched = DfsScheduler::new(prefix.clone(), max_preemptions, Arc::clone(&log));
                let fail = run_schedule(Box::new(sched), &mut order_reports, &mut schedules);
                if let Ok(Some(f)) = fail {
                    found = Some(f);
                    break;
                }
                let records = log.lock().unwrap_or_else(PoisonError::into_inner);
                push_extensions(&prefix, &records, &mut stack, max_preemptions);
            }
            found
        }
    };

    if let Some(f) = &failure {
        write_artifact(&budget.label, f);
    }
    Report {
        schedules,
        failure,
        lock_orders: merge_reports(&order_reports),
    }
}

/// Replays `program` once under the schedule encoded in `token` (a
/// `RUSTWREN_SCHEDULE` value) and returns the program's result, or the
/// panic text if the replayed schedule fails.
///
/// # Errors
///
/// `Err` carries either the token parse error or the replayed failure's
/// panic text.
pub fn replay<R, F>(program: F, token: &str) -> Result<R, String>
where
    F: Fn(Kernel) -> R,
{
    let _quiet = QuietGuard::new();
    let sched = ReplayScheduler::from_token(token)?;
    run_once(&program, Box::new(sched), false).result
}

// ---------------------------------------------------------------------------
// Shrinking (ddmin)
// ---------------------------------------------------------------------------

/// Minimizes a failing trace by delta debugging: repeatedly drop chunks of
/// decisions and keep the candidate iff *replaying* it reproduces the same
/// failure signature. Shrink acceptance therefore doubles as replay
/// verification — the returned trace is known-good by construction.
fn shrink<R, F>(program: &F, expected: &R, trace: ScheduleTrace, message: String) -> Failure
where
    R: PartialEq + fmt::Debug,
    F: Fn(Kernel) -> R,
{
    let sig = signature(&message);
    let mut replays = 0usize;
    let mut reproduces = |entries: &[TraceEntry]| -> bool {
        if replays >= MAX_SHRINK_REPLAYS {
            return false;
        }
        replays += 1;
        let t = ScheduleTrace::from_entries(entries.to_vec());
        let out: RunOutcome<R> = run_once(program, Box::new(ReplayScheduler::new(&t)), false);
        match out.result {
            Err(m) => signature(&m) == sig,
            Ok(r) => sig == "result mismatch" && r != *expected,
        }
    };

    let mut current = trace.entries.clone();
    let mut n = 2usize;
    while current.len() >= 2 && n >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<TraceEntry> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !candidate.is_empty() && reproduces(&candidate) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    // A trace can sometimes shrink to a single decision.
    if current.len() == 1 && !reproduces(&[]) {
        // keep the single entry
    } else if current.len() == 1 {
        current.clear();
    }

    Failure {
        message,
        signature: sig,
        trace,
        shrunk: ScheduleTrace::from_entries(current),
        shrink_replays: replays,
    }
}

// ---------------------------------------------------------------------------
// Bounded-exhaustive DFS
// ---------------------------------------------------------------------------

/// One decision the DFS scheduler made, with everything the driver needs to
/// enumerate the untaken siblings.
#[derive(Debug, Clone)]
struct BranchRecord {
    kind: ChoiceKind,
    candidates: Vec<u64>,
    chosen: usize,
    /// Footprint of the segment executed *before* this choice point (sync
    /// resources touched since the previous one).
    footprint: Vec<u64>,
}

/// Exhaustive explorer: follows a fixed decision prefix, takes the default
/// everywhere past it, and logs every choice point so the driver can
/// enumerate the untaken branches. Preemptions are bounded per schedule —
/// the classic result that most concurrency bugs need only a few.
#[derive(Debug)]
pub struct DfsScheduler {
    prefix: Vec<u32>,
    pos: usize,
    max_preemptions: usize,
    preemptions_used: usize,
    log: Arc<StdMutex<Vec<BranchRecord>>>,
}

impl DfsScheduler {
    fn new(
        prefix: Vec<u32>,
        max_preemptions: usize,
        log: Arc<StdMutex<Vec<BranchRecord>>>,
    ) -> DfsScheduler {
        DfsScheduler {
            prefix,
            pos: 0,
            max_preemptions,
            preemptions_used: 0,
            log,
        }
    }

    fn record(&mut self, c: &Choice<'_>, chosen: usize) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(BranchRecord {
                kind: c.kind,
                candidates: c.candidates.to_vec(),
                chosen,
                footprint: c.segment.to_vec(),
            });
        self.pos += 1;
    }
}

impl Scheduler for DfsScheduler {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        let idx = (self.prefix.get(self.pos).copied().unwrap_or(0) as usize)
            .min(c.candidates.len().saturating_sub(1));
        self.record(c, idx);
        idx
    }

    fn preempt(&mut self, c: &Choice<'_>) -> bool {
        let wanted = self.prefix.get(self.pos) == Some(&1);
        let yes = wanted && self.preemptions_used < self.max_preemptions;
        if yes {
            self.preemptions_used += 1;
        }
        self.record(c, usize::from(yes));
        yes
    }

    fn exploring(&self) -> bool {
        true
    }
}

fn disjoint(a: &[u64], b: &[u64]) -> bool {
    !a.iter().any(|x| b.contains(x))
}

/// Enumerates the unexplored siblings of a completed run. To visit each
/// decision sequence exactly once, alternatives are only generated at
/// positions past the fixed prefix (earlier positions were enumerated by
/// ancestor runs); pruned alternatives are schedules that merely transpose
/// two adjacent segments with disjoint footprints — by independence they
/// reach the state the explorer has already seen.
fn push_extensions(
    prefix: &[u32],
    records: &[BranchRecord],
    stack: &mut Vec<Vec<u32>>,
    max_preemptions: usize,
) {
    for n in (prefix.len()..records.len()).rev() {
        let rec = &records[n];
        let alternatives: std::ops::Range<usize> = match rec.kind {
            ChoiceKind::Preempt => {
                let used = records[..n]
                    .iter()
                    .filter(|r| r.kind == ChoiceKind::Preempt && r.chosen == 1)
                    .count();
                // `chosen` past the prefix is always 0 here; the alternative
                // is "yes", budget permitting.
                if used < max_preemptions && rec.chosen == 0 {
                    1..2
                } else {
                    0..0
                }
            }
            _ => (rec.chosen + 1)..rec.candidates.len(),
        };
        for alt in alternatives.rev() {
            if rec.kind == ChoiceKind::Ready && is_equivalent_transposition(records, n, alt) {
                continue;
            }
            let mut decisions: Vec<u32> = Vec::with_capacity(n + 1);
            decisions.extend_from_slice(prefix);
            decisions.resize(n, 0);
            decisions.push(alt as u32);
            stack.push(decisions);
        }
    }
}

/// Whether picking `alt` at position `n` merely swaps the transitions of
/// positions `n` and `n+1`, and those transitions touched disjoint sync
/// resources — an independent transposition that provably reaches an
/// already-visited state.
fn is_equivalent_transposition(records: &[BranchRecord], n: usize, alt: usize) -> bool {
    let (Some(next), Some(after)) = (records.get(n + 1), records.get(n + 2)) else {
        return false;
    };
    if next.kind != ChoiceKind::Ready {
        return false;
    }
    let alt_id = records[n].candidates.get(alt);
    let next_id = next.candidates.get(next.chosen);
    match (alt_id, next_id) {
        (Some(a), Some(b)) if a == b => {
            // transition(n)'s footprint is the segment of choice n+1;
            // transition(n+1)'s is the segment of choice n+2.
            disjoint(&next.footprint, &after.footprint)
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Trace artifacts
// ---------------------------------------------------------------------------

/// Writes the shrunk failing trace to `$RUSTWREN_TRACE_DIR/<label>.trace`
/// (for CI artifact upload). Best-effort: any I/O failure is ignored.
fn write_artifact(label: &str, failure: &Failure) {
    let Ok(dir) = std::env::var("RUSTWREN_TRACE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let body = format!(
        "RUSTWREN_SCHEDULE={}\nfull-trace: {}\nsignature: {}\n\n{}\n",
        failure.shrunk.token(),
        failure.trace.token(),
        failure.signature,
        failure.message
    );
    let _ = std::fs::write(format!("{dir}/{safe}.trace"), body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clean_program_passes_random_exploration() {
        let report = explore(
            |kernel| {
                kernel.run("client", || {
                    let hs: Vec<_> = (0..4)
                        .map(|i| rustwren_sim::spawn(format!("w{i}"), move || i * 2))
                        .collect();
                    hs.into_iter().map(|h| h.join()).sum::<i32>()
                })
            },
            &Budget::random(25, 11),
        );
        assert!(report.ok(), "{report}");
        assert_eq!(report.schedules, 26);
    }

    #[test]
    fn clean_program_passes_dfs_exploration() {
        let report = explore(
            |kernel| {
                kernel.run("client", || {
                    let a = rustwren_sim::spawn("a", || {
                        rustwren_sim::sleep(Duration::from_millis(1));
                        1u64
                    });
                    let b = rustwren_sim::spawn("b", || {
                        rustwren_sim::sleep(Duration::from_millis(1));
                        2u64
                    });
                    a.join() + b.join()
                })
            },
            &Budget::dfs(40, 2),
        );
        assert!(report.ok(), "{report}");
        assert!(report.schedules > 1, "DFS explored alternatives");
    }

    #[test]
    fn signature_extraction() {
        assert_eq!(signature("boom\nschedule: X"), "boom");
        assert_eq!(
            signature("result mismatch: expected 1, got 2"),
            "result mismatch"
        );
        assert_eq!(
            signature("simulation deadlock at t=1.2s: all 3 blocked\nwaits..."),
            "simulation deadlock"
        );
    }

    #[test]
    fn replay_rejects_bad_tokens() {
        let r: Result<(), String> = replay(|_k| (), "v9:zzz");
        assert!(r.is_err());
    }
}
