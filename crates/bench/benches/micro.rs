//! Criterion micro-benchmarks of the substrate hot paths: the wire codec,
//! the partitioner, raw object-store operations, the tone analyzer and the
//! virtual-time kernel. These measure *wall* time of the implementation
//! itself (the experiment binaries measure *virtual* time).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rustwren_core::partition::{partition_objects, DiscoveredObject};
use rustwren_core::wire::Value;
use rustwren_sim::Kernel;
use rustwren_store::{ObjectMeta, ObjectStore};
use rustwren_workloads::tone;

fn sample_value() -> Value {
    let points: Vec<Value> = (0..100)
        .map(|i| {
            Value::map()
                .with("lat", 40.0 + i as f64 * 0.001)
                .with("lon", -74.0 - i as f64 * 0.001)
                .with("tone", if i % 3 == 0 { "positive" } else { "negative" })
        })
        .collect();
    Value::map()
        .with("group", "new-york.csv")
        .with("comments", 100i64)
        .with("points", Value::List(points))
}

fn bench_wire(c: &mut Criterion) {
    let v = sample_value();
    let encoded = v.encode();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_tone_result", |b| b.iter(|| v.encode()));
    g.bench_function("decode_tone_result", |b| {
        b.iter(|| Value::decode(&encoded).expect("valid"))
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let objects: Vec<DiscoveredObject> = rustwren_workloads::airbnb::CITIES
        .iter()
        .map(|(name, size, _, _)| DiscoveredObject {
            bucket: "reviews".into(),
            meta: ObjectMeta {
                key: format!("{name}.csv"),
                size: *size,
                logical_size: *size,
                etag: 0,
                last_modified: rustwren_sim::SimInstant::ZERO,
            },
        })
        .collect();
    c.bench_function("partition_33_cities_at_2MB", |b| {
        b.iter(|| {
            let parts = partition_objects(&objects, Some(2 << 20)).expect("non-zero chunk");
            assert_eq!(parts.len(), 923);
            parts
        })
    });
}

fn bench_store(c: &mut Criterion) {
    let kernel = Kernel::new();
    let store = ObjectStore::new(&kernel);
    store.create_bucket("b").expect("fresh bucket");
    let payload = Bytes::from(vec![7u8; 64 * 1024]);
    let mut g = c.benchmark_group("store");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("put_64k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put("b", &format!("k{}", i % 128), payload.clone())
                .expect("put")
        })
    });
    store.put("b", "get-target", payload.clone()).expect("put");
    g.bench_function("get_64k", |b| {
        b.iter(|| store.get("b", "get-target").expect("get"))
    });
    g.bench_function("range_4k_of_64k", |b| {
        b.iter(|| {
            store
                .get_range("b", "get-target", 1000, 5096)
                .expect("range")
        })
    });
    g.finish();
}

fn bench_tone(c: &mut Criterion) {
    let kernel = Kernel::new();
    let store = ObjectStore::new(&kernel);
    rustwren_workloads::airbnb::generate(&store, "reviews", 1 << 12, 1).expect("stages");
    let data = store.get("reviews", "amsterdam.csv").expect("generated");
    let mut g = c.benchmark_group("tone");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("analyze_city_sample", |b| {
        b.iter(|| tone::analyze_lines(&data))
    });
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel_spawn_join_100", |b| {
        b.iter_batched(
            Kernel::new,
            |kernel| {
                kernel.run("client", || {
                    let hs: Vec<_> = (0..100)
                        .map(|i| {
                            rustwren_sim::spawn(format!("t{i}"), || {
                                rustwren_sim::sleep(std::time::Duration::from_millis(5));
                            })
                        })
                        .collect();
                    for h in hs {
                        h.join();
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_partitioner,
    bench_store,
    bench_tone,
    bench_kernel
);
criterion_main!(benches);
