//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Unlike `micro.rs`, these report **virtual time** (via `iter_custom`):
//! each measurement runs a complete simulated job and yields the virtual
//! duration the configuration produced, so the numbers are directly
//! comparable to the paper's seconds.
//!
//! Ablated choices:
//! * remote-invoker group size (the paper settled on 100);
//! * direct-spawn client thread count;
//! * serialized-function blob size (cost of shipping fat closures);
//! * client status poll interval;
//! * warm vs cold container pools (second job on the same executor);
//! * straggler speculation on/off against an injected 10× straggler;
//! * fault recovery under injected chaos (brownouts, corruption, crashes)
//!   against a fault-free baseline — the virtual-time cost of surviving.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rustwren_core::{
    CorruptMode, FaultPlan, PathScope, RetryPolicy, SimCloud, SizedFn, SpawnStrategy,
    SpeculationConfig, TaskCtx, TimeWindow, Value, PHASE_BEFORE_RUN,
};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::compute;

const TASKS: usize = 60;

fn run_job(cloud: &SimCloud, strategy: SpawnStrategy, poll: Duration) -> Duration {
    let cloud2 = cloud.clone();
    cloud.run(move || {
        let t0 = rustwren_sim::now();
        let exec = cloud2
            .executor()
            .spawn(strategy)
            .poll_interval(poll)
            .build()
            .expect("executor");
        exec.map(
            compute::COMPUTE_FN,
            (0..TASKS).map(|_| compute::input(10.0)),
        )
        .expect("map");
        exec.get_result().expect("results");
        rustwren_sim::now() - t0
    })
}

fn fresh_cloud(seed: u64) -> SimCloud {
    let cloud = SimCloud::builder()
        .seed(seed)
        .client_network(NetworkProfile::wan())
        .build();
    compute::register(&cloud);
    cloud
}

fn custom<F: FnMut() -> Duration>(c: &mut Criterion, group: &str, id: String, mut f: F) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function(BenchmarkId::from_parameter(id), |b| {
        b.iter_custom(|iters| (0..iters).map(|_| f()).sum());
    });
    g.finish();
}

fn ablate_group_size(c: &mut Criterion) {
    for group_size in [TASKS, 20, 10, 5] {
        custom(
            c,
            "invoker_group_size",
            format!("group={group_size}"),
            move || {
                let cloud = fresh_cloud(1);
                run_job(
                    &cloud,
                    SpawnStrategy::RemoteInvoker {
                        group_size,
                        invoker_threads: 2,
                    },
                    Duration::from_millis(500),
                )
            },
        );
    }
}

fn ablate_client_threads(c: &mut Criterion) {
    for threads in [1usize, 5, 16] {
        custom(
            c,
            "direct_client_threads",
            format!("threads={threads}"),
            move || {
                let cloud = fresh_cloud(2);
                run_job(
                    &cloud,
                    SpawnStrategy::Direct {
                        client_threads: threads,
                    },
                    Duration::from_millis(500),
                )
            },
        );
    }
}

fn ablate_code_size(c: &mut Criterion) {
    for kb in [8u64, 1024, 4096] {
        custom(c, "func_blob_size", format!("{kb}KB"), move || {
            let cloud = fresh_cloud(3);
            cloud.register_fn(
                "fat",
                SizedFn::new(
                    |ctx: &TaskCtx, v: Value| {
                        ctx.charge(Duration::from_secs(10));
                        Ok(v)
                    },
                    kb * 1024,
                ),
            );
            let cloud2 = cloud.clone();
            cloud.run(move || {
                let t0 = rustwren_sim::now();
                let exec = cloud2.executor().build().expect("executor");
                exec.map("fat", (0..TASKS).map(Value::from)).expect("map");
                exec.get_result().expect("results");
                rustwren_sim::now() - t0
            })
        });
    }
}

fn ablate_poll_interval(c: &mut Criterion) {
    for ms in [100u64, 500, 2000] {
        custom(c, "poll_interval", format!("{ms}ms"), move || {
            let cloud = fresh_cloud(4);
            run_job(
                &cloud,
                SpawnStrategy::Direct { client_threads: 5 },
                Duration::from_millis(ms),
            )
        });
    }
}

fn ablate_warm_pool(c: &mut Criterion) {
    for second_job in [false, true] {
        let id = if second_job {
            "warm(second job)"
        } else {
            "cold(first job)"
        };
        custom(c, "container_pool", id.to_owned(), move || {
            let cloud = fresh_cloud(5);
            let first = run_job(
                &cloud,
                SpawnStrategy::Direct { client_threads: 5 },
                Duration::from_millis(500),
            );
            if !second_job {
                return first;
            }
            run_job(
                &cloud,
                SpawnStrategy::Direct { client_threads: 5 },
                Duration::from_millis(500),
            )
        });
    }
}

fn ablate_speculation(c: &mut Criterion) {
    // One task takes 10× the others' duration, but only on its first
    // execution — a slow node, not an inherently slow task. Without
    // speculation the job waits out the full straggler; with it, a backup
    // copy launched once the rest of the job is done finishes in normal
    // time. Deterministic per seed: each measurement replays the same run.
    for speculation in [false, true] {
        let id = if speculation {
            "speculation=on"
        } else {
            "speculation=off"
        };
        custom(c, "straggler_speculation", id.to_owned(), move || {
            let cloud = fresh_cloud(6);
            let executions = Mutex::new(HashMap::<i64, usize>::new());
            cloud.register_fn("sometimes-slow", move |ctx: &TaskCtx, v: Value| {
                let n = v.as_i64().ok_or("int")?;
                let run = {
                    let mut seen = executions.lock().unwrap();
                    let count = seen.entry(n).or_insert(0);
                    *count += 1;
                    *count
                };
                if n == 0 && run == 1 {
                    ctx.charge(Duration::from_secs(100));
                } else {
                    ctx.charge(Duration::from_secs(10));
                }
                Ok(v)
            });
            let cloud2 = cloud.clone();
            cloud.run(move || {
                let t0 = rustwren_sim::now();
                let spec = if speculation {
                    SpeculationConfig::on()
                } else {
                    SpeculationConfig::disabled()
                };
                let exec = cloud2
                    .executor()
                    .speculation(spec)
                    .build()
                    .expect("executor");
                exec.map("sometimes-slow", (0..TASKS as i64).map(Value::from))
                    .expect("map");
                exec.get_result().expect("results");
                rustwren_sim::now() - t0
            })
        });
    }
}

type PlanMaker = Option<fn() -> FaultPlan>;

fn ablate_chaos(c: &mut Criterion) {
    // Virtual-time overhead of healing injected faults, per fault family.
    // Every variant runs the same seed/job with the retry policy on; only
    // the installed FaultPlan differs. Deterministic per seed: each
    // measurement replays the same fault timeline.
    let plans: [(&str, PlanMaker); 4] = [
        ("fault-free", None),
        (
            "brownout p=0.15",
            Some(|| FaultPlan::new(101).cos_brownout(PathScope::any(), TimeWindow::always(), 0.15)),
        ),
        (
            "corrupt-get p=0.2",
            Some(|| {
                FaultPlan::new(102).corrupt_get(
                    PathScope::prefix("jobs/"),
                    TimeWindow::always(),
                    CorruptMode::FlipByte,
                    0.2,
                )
            }),
        ),
        (
            "crash before-run p=0.1",
            Some(|| FaultPlan::new(103).crash(PHASE_BEFORE_RUN, TimeWindow::always(), 0.1)),
        ),
    ];
    for (id, plan) in plans {
        custom(c, "chaos_recovery", id.to_owned(), move || {
            let mut builder = SimCloud::builder()
                .seed(7)
                .client_network(NetworkProfile::wan());
            if let Some(mk) = plan {
                builder = builder.chaos(mk());
            }
            let cloud = builder.build();
            compute::register(&cloud);
            let cloud2 = cloud.clone();
            cloud.run(move || {
                let t0 = rustwren_sim::now();
                let exec = cloud2
                    .executor()
                    .retry(RetryPolicy::with_attempts(6))
                    .poll_interval(Duration::from_millis(500))
                    .build()
                    .expect("executor");
                exec.map(
                    compute::COMPUTE_FN,
                    (0..TASKS).map(|_| compute::input(10.0)),
                )
                .expect("map");
                exec.get_result().expect("chaos run healed");
                rustwren_sim::now() - t0
            })
        });
    }
}

criterion_group!(
    benches,
    ablate_group_size,
    ablate_client_threads,
    ablate_code_size,
    ablate_poll_interval,
    ablate_warm_pool,
    ablate_speculation,
    ablate_chaos
);
criterion_main!(benches);
