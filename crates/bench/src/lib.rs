//! Shared plumbing for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§6). They print the paper's reported numbers next to
//! the measured ones so the shape comparison is immediate. All binaries
//! accept `--smoke` to run a reduced-scale variant (used by the test
//! suite) and `--seed N` to change the deterministic seed.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

use rustwren_core::stats::ConcurrencyPoint;

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchArgs {
    /// Run a reduced-scale variant.
    pub smoke: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `std::env::args`; unknown flags panic with usage help.
    ///
    /// # Panics
    ///
    /// Panics on unknown arguments.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs {
            smoke: false,
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => args.smoke = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer");
                }
                other => panic!("unknown argument `{other}` (expected --smoke or --seed N)"),
            }
        }
        args
    }

    /// Scales an experiment size down in smoke mode.
    pub fn scaled(&self, full: usize, smoke: usize) -> usize {
        if self.smoke {
            smoke
        } else {
            full
        }
    }
}

/// A plain-text table printer with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a concurrency-over-time series as an ASCII area chart
/// (the paper's Figs 2–3 black line).
pub fn ascii_series(series: &[ConcurrencyPoint], width: usize, height: usize) -> String {
    if series.is_empty() {
        return "(no activity)\n".to_owned();
    }
    let t_max = series.last().map(|&(t, _)| t).unwrap_or(1.0).max(1e-9);
    let c_max = series.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    // Sample the step function at `width` positions.
    let mut samples = vec![0usize; width];
    for (i, s) in samples.iter_mut().enumerate() {
        let t = t_max * i as f64 / (width.saturating_sub(1).max(1)) as f64;
        let mut level = 0;
        for &(pt, c) in series {
            if pt <= t {
                level = c;
            } else {
                break;
            }
        }
        *s = level;
    }
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = c_max as f64 * row as f64 / height as f64;
        let _ = write!(
            out,
            "{:>6} |",
            if row == height {
                c_max.to_string()
            } else {
                String::new()
            }
        );
        for &s in &samples {
            out.push(if s as f64 >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{:>6} +{}", 0, "-".repeat(width));
    let _ = writeln!(out, "{:>6}  0{:>w$.0}s", "", t_max, w = width - 1);
    out
}

/// Formats seconds compactly for tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Chunk", "Speedup"]);
        t.row(&["64MB".into(), "10.95x".into()]);
        t.row(&["2MB".into(), "135.79x".into()]);
        let r = t.render();
        assert!(r.contains("| Chunk | Speedup "));
        assert!(r.lines().count() >= 4);
        let widths: Vec<usize> = r.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{r}"
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn ascii_series_shape() {
        let series = vec![(0.0, 0), (1.0, 10), (5.0, 0)];
        let chart = ascii_series(&series, 40, 5);
        assert!(chart.contains('#'));
        assert_eq!(chart.lines().count(), 7);
    }

    #[test]
    fn ascii_series_empty() {
        assert_eq!(ascii_series(&[], 10, 3), "(no activity)\n");
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(8.25), "8.2s");
        assert_eq!(fmt_secs(5160.0), "5160s");
    }
}
