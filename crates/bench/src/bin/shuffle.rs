//! Shuffle-plane ablation — a CloudSort-style virtual 100 GB sort.
//!
//! The same range-partitioned sort runs under three shuffle arms:
//!
//! 1. **whole-object** — the seed framework's plane: every map PUTs one
//!    COS object per reducer, every reducer GETs one object per map
//!    (O(M x R) COS operations).
//! 2. **partitioned** — the segmented plane: sorted runs are elided when
//!    empty, inlined into the map's status manifest when small, or packed
//!    into a single per-map segment object fetched by byte range.
//! 3. **relay** — the partitioned plane exchanged through a simulated
//!    low-latency VM relay tier instead of COS (the ablation the paper's
//!    §5 discussion of storage-mediated communication motivates).
//!
//! Prints the comparison table and writes `BENCH_shuffle.json`, then fails
//! (exit 1) unless the partitioned arm strictly beats whole-object on both
//! virtual time and COS operations, and the relay arm strictly beats the
//! partitioned arm on COS operations — the regression gate CI runs in
//! smoke mode. Every arm's reducer reports must also pass the CloudSort
//! global verification (no record lost, ranges ordered and disjoint).
//!
//! Run: `cargo run --release -p rustwren-bench --bin shuffle`

use std::fmt::Write as _;

use rustwren_bench::{fmt_secs, BenchArgs, Table};
use rustwren_core::stats::CosOpStats;
use rustwren_core::{ExchangeMode, Partitioner, ShuffleOpts, ShufflePlane, SimCloud};
use rustwren_faas::PlatformConfig;
use rustwren_sim::NetworkProfile;
use rustwren_store::{OpCounts, RelayOpCounts};
use rustwren_workloads::cloudsort::{self, CloudSortConfig, RangeReport};

/// One measured shuffle arm.
struct Arm {
    name: &'static str,
    secs: f64,
    ops: CosOpStats,
    relay: RelayOpCounts,
    reports: Vec<RangeReport>,
}

/// Headroom above the map fan-out so nothing throttles; containers well
/// below the task count so the job runs in waves over warm containers.
fn platform(tasks: usize) -> PlatformConfig {
    PlatformConfig {
        concurrency_limit: tasks + tasks / 10 + 50,
        cluster_containers: (tasks / 4).max(10),
        ..PlatformConfig::default()
    }
}

fn run_arm(
    name: &'static str,
    seed: u64,
    cfg: CloudSortConfig,
    plane: ShufflePlane,
    exchange: ExchangeMode,
) -> Arm {
    let cloud = SimCloud::builder()
        .seed(seed)
        .platform(platform(cfg.maps))
        .client_network(NetworkProfile::lan())
        .build();
    cloudsort::register(&cloud);
    cloudsort::stage(cloud.store(), "cloudsort", &cfg).expect("stage cloudsort input");
    let partitioner = Partitioner::range_from_samples(cloudsort::sample_keys(&cfg), cfg.reducers);
    let cloud2 = cloud.clone();
    let (secs, ops, results) = cloud.run(move || {
        let t0 = rustwren_sim::now().as_nanos();
        let exec = cloud2.executor().build().expect("executor");
        cloudsort::submit(
            &exec,
            "cloudsort",
            &cfg,
            ShuffleOpts {
                plane,
                exchange,
                partitioner,
                ..ShuffleOpts::default()
            },
        )
        .expect("submit");
        let results = exec.get_result().expect("results");
        let secs = (rustwren_sim::now().as_nanos() - t0) as f64 / 1e9;
        (secs, exec.cos_op_stats(), results)
    });
    let reports = cloudsort::verify(&results, &cfg)
        .unwrap_or_else(|e| panic!("arm {name}: sort verification failed: {e}"));
    Arm {
        name,
        secs,
        ops,
        relay: cloud.relay().stats(),
        reports,
    }
}

fn ops_json(o: OpCounts) -> String {
    format!(
        "{{\"gets\":{},\"puts\":{},\"lists\":{},\"heads\":{},\"deletes\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
        o.gets, o.puts, o.lists, o.heads, o.deletes, o.bytes_in, o.bytes_out
    )
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"name\":\"{}\",\"virtual_secs\":{:.3},\"staging\":{},\"polling\":{},\"agent\":{},\"total_cos_ops\":{},\"total_cos_bytes\":{},\"relay_ops\":{},\"relay_bytes\":{}}}",
        a.name,
        a.secs,
        ops_json(a.ops.staging),
        ops_json(a.ops.polling),
        ops_json(a.ops.agent),
        a.ops.total_ops(),
        a.ops.total_bytes(),
        a.relay.total_ops(),
        a.relay.total_bytes(),
    )
}

fn main() {
    let args = BenchArgs::parse();
    let cfg = if args.smoke {
        CloudSortConfig::smoke(args.seed)
    } else {
        CloudSortConfig::full(args.seed)
    };

    println!("== Shuffle-plane ablation: CloudSort-style virtual sort ==");
    println!(
        "   ({} GB logical, {} maps x {} MB, {} reducers, {} containers)\n",
        cfg.logical_bytes / 1_000_000_000,
        cfg.maps,
        cfg.bytes_per_map() / 1_000_000,
        cfg.reducers,
        platform(cfg.maps).cluster_containers
    );

    let arms = [
        run_arm(
            "whole-object",
            args.seed,
            cfg,
            ShufflePlane::WholeObject,
            ExchangeMode::Cos,
        ),
        run_arm(
            "partitioned",
            args.seed,
            cfg,
            ShufflePlane::Partitioned,
            ExchangeMode::Cos,
        ),
        run_arm(
            "relay",
            args.seed,
            cfg,
            ShufflePlane::Partitioned,
            ExchangeMode::Relay,
        ),
    ];

    let mut table = Table::new(&[
        "Arm",
        "Virtual time",
        "Agent ops",
        "Polling ops",
        "Total COS ops",
        "Relay ops",
    ]);
    for a in &arms {
        table.row(&[
            a.name.to_owned(),
            fmt_secs(a.secs),
            a.ops.agent.total_ops().to_string(),
            a.ops.polling.total_ops().to_string(),
            a.ops.total_ops().to_string(),
            a.relay.total_ops().to_string(),
        ]);
    }
    println!("{table}");

    let (whole, part, relay) = (&arms[0], &arms[1], &arms[2]);
    let time_cut = 100.0 * (1.0 - part.secs / whole.secs);
    let ops_ratio = whole.ops.total_ops() as f64 / part.ops.total_ops() as f64;
    println!(
        "partitioned vs whole-object: {time_cut:.1}% less virtual time, {ops_ratio:.2}x fewer COS ops"
    );
    println!(
        "relay vs partitioned: {} -> {} COS ops ({} relay ops take the data plane off COS)\n",
        part.ops.total_ops(),
        relay.ops.total_ops(),
        relay.relay.total_ops()
    );

    // Identical reducer ranges across arms: the ablation changes the data
    // plane, never the sorted output.
    assert_eq!(
        whole.reports, part.reports,
        "partitioned plane changed the sort output"
    );
    assert_eq!(
        part.reports, relay.reports,
        "relay exchange changed the sort output"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"logical_bytes\":{},\"maps\":{},\"reducers\":{},\"record_bytes\":{},\"seed\":{},\"smoke\":{},\"arms\":[",
        cfg.logical_bytes, cfg.maps, cfg.reducers, cfg.record_bytes, args.seed, args.smoke
    );
    for (i, a) in arms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&arm_json(a));
    }
    let _ = write!(
        json,
        "],\"time_reduction_pct\":{time_cut:.1},\"cos_ops_ratio\":{ops_ratio:.2}}}"
    );
    json.push('\n');
    std::fs::write("BENCH_shuffle.json", &json).expect("writing BENCH_shuffle.json");
    println!("wrote BENCH_shuffle.json");

    // Regression gates, at any scale.
    assert!(
        part.secs < whole.secs,
        "partitioned ({}s) must beat whole-object ({}s)",
        part.secs,
        whole.secs
    );
    assert!(
        part.ops.total_ops() < whole.ops.total_ops(),
        "partitioned ({} COS ops) must be cheaper than whole-object ({})",
        part.ops.total_ops(),
        whole.ops.total_ops()
    );
    assert!(
        relay.ops.total_ops() < part.ops.total_ops(),
        "relay ({} COS ops) must be cheaper than partitioned ({})",
        relay.ops.total_ops(),
        part.ops.total_ops()
    );
    assert!(
        relay.relay.total_ops() > 0,
        "relay arm must actually use the relay tier"
    );
}
