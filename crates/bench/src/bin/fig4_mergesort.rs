//! Fig 4 — Dynamic composability: parallel mergesort.
//!
//! Sorts arrays of N ∈ [500 K, 25 M] integers with function-recursion-tree
//! depths d = 0..=4 (2^d leaf functions, nested parallelism per §4.4). The
//! paper's findings, which this binary reproduces as a table of execution
//! times: sort time grows linearly in N; larger depths win for larger
//! workloads; improvements flatten beyond d = 3 because function-spawning
//! overhead starts to dominate.
//!
//! Run: `cargo run --release -p rustwren-bench --bin fig4_mergesort`

use rustwren_bench::{fmt_secs, BenchArgs, Table};
use rustwren_core::{PlanHints, SimCloud, Value};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::mergesort;

fn main() {
    let args = BenchArgs::parse();
    let (sizes, depths): (Vec<u64>, Vec<u32>) = if args.smoke {
        (vec![20_000, 50_000], vec![0, 1, 2])
    } else {
        (
            vec![500_000, 1_000_000, 5_000_000, 10_000_000, 25_000_000],
            vec![0, 1, 2, 3, 4],
        )
    };

    println!("== Fig 4: mergesort execution time vs N, by function-tree depth d ==\n");
    let mut header: Vec<String> = vec!["N".to_owned()];
    header.extend(depths.iter().map(|d| format!("d={d}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &n in &sizes {
        let mut cells = vec![format_n(n)];
        let mut times = Vec::new();
        for &d in &depths {
            let secs = run_sort(args.seed, n, d);
            times.push(secs);
            cells.push(fmt_secs(secs));
        }
        rows.push(times);
        table.row(&cells);
    }
    println!("{table}");
    println!("(paper shape: linear in N; deeper trees help at large N; gains flatten past d=3)");

    // Sanity summary like the paper's discussion.
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let small_best = best_depth(&depths, first);
        let large_best = best_depth(&depths, last);
        println!("\nbest depth at N={}: d={small_best}", format_n(sizes[0]));
        println!(
            "best depth at N={}: d={large_best}",
            format_n(*sizes.last().expect("non-empty"))
        );
    }
}

fn run_sort(seed: u64, n: u64, depth: u32) -> f64 {
    let cloud = SimCloud::builder()
        .seed(seed)
        .client_network(NetworkProfile::wan())
        .build();
    mergesort::register(&cloud);
    let cloud2 = cloud.clone();
    cloud.run(move || {
        let t0 = rustwren_sim::now();
        // Declare the recursion shape so the pre-flight analyzer can prove
        // the tree fits inside the namespace concurrency limit (rule W001).
        let exec = cloud2
            .executor()
            .plan_hints(PlanHints {
                nesting_depth: depth,
                nested_fanout: 2,
                ..PlanHints::default()
            })
            .build()
            .expect("executor");
        exec.call_async(mergesort::MERGESORT_FN, mergesort::input(seed, n, depth))
            .expect("call_async");
        let results = exec.get_result().expect("results");
        let sorted =
            mergesort::decode_i64s(results[0].as_bytes().expect("mergesort returns bytes"));
        assert_eq!(sorted.len() as u64, n, "all elements sorted");
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
        drop::<Vec<Value>>(results);
        (rustwren_sim::now() - t0).as_secs_f64()
    })
}

fn best_depth(depths: &[u32], times: &[f64]) -> u32 {
    depths
        .iter()
        .zip(times)
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(d, _)| *d)
        .expect("non-empty")
}

fn format_n(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else {
        format!("{}K", n / 1_000)
    }
}
