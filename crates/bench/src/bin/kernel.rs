//! Kernel fast-path throughput bench — wall-clock events/sec tracking for
//! the simulator itself (DESIGN §14).
//!
//! Three scenarios:
//!
//! 1. **100k-task map** (kernel-level): every task is a pure
//!    startup-sleep → exec-sleep phase sequence, run twice — once on the
//!    pre-refactor execution model (one parked OS thread per task, the
//!    *threaded compat arm*) and once as lightweight state-machine tasks
//!    on the dispatch loop. Identical virtual timelines; only the wall
//!    clock differs.
//! 2. **CloudSort shuffle** — the partitioned-plane sort end to end, so
//!    the number tracks the real mixed workload (threads + lights + store
//!    + timers), not a microbenchmark.
//! 3. **PR 8 burst trace** — the two-tenant serving trace under the
//!    hybrid keep-alive policy, run twice; the runs must be bitwise
//!    identical (results, stats, virtual clock), the replay gate.
//!
//! Prints the table, writes `BENCH_kernel.json`, and exits 1 unless the
//! lightweight arm clears the ≥5× events/sec gate over the threaded
//! compat arm and the burst replay is bitwise identical.
//!
//! Run: `cargo run --release -p rustwren-bench --bin kernel` (`--smoke`
//! for the reduced CI scale).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rustwren_bench::{BenchArgs, Table};
use rustwren_core::{ExchangeMode, Partitioner, ShuffleOpts, ShufflePlane, SimCloud};
use rustwren_faas::{ActivationId, InvokeError, KeepAlivePolicy, PlatformConfig, TenantConfig};
use rustwren_sim::{Kernel, KernelStats, LightStep, NetworkProfile};
use rustwren_workloads::cloudsort::{self, CloudSortConfig};
use rustwren_workloads::serving::{self, BurstWindow, TenantTraffic, TraceConfig, SERVE_FN};

/// Scheduler events processed by a kernel: every dispatch decision the
/// refactor is trying to make cheap.
fn events(st: &KernelStats) -> u64 {
    st.clock_advances + st.timers_scheduled + st.threads_started
}

struct MapArm {
    name: &'static str,
    wall_secs: f64,
    virtual_secs: f64,
    events: u64,
    light_polls: u64,
}

impl MapArm {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
}

/// The kernel-level map scenario: `tasks` two-phase sleepers released in
/// waves of `wave` (so the threaded arm never holds more than one wave of
/// OS threads), with the client waiting out each wave on the virtual
/// clock. Both arms execute byte-identical sleep sequences.
fn map_arm(name: &'static str, light: bool, tasks: usize, wave: usize) -> MapArm {
    let kernel = Kernel::new();
    let done = Arc::new(AtomicUsize::new(0));
    let done2 = Arc::clone(&done);
    let wall = Instant::now();
    let virtual_secs = kernel.clone().run("client", move || {
        let mut launched = 0usize;
        while launched < tasks {
            let n = wave.min(tasks - launched);
            for i in launched..launched + n {
                let startup = Duration::from_millis(5 + (i % 7) as u64 * 5);
                let exec = Duration::from_millis(60);
                let done = Arc::clone(&done2);
                if light {
                    let mut step = 0u8;
                    rustwren_sim::spawn_light("task", move || match step {
                        0 => {
                            step = 1;
                            LightStep::Sleep(startup)
                        }
                        1 => {
                            step = 2;
                            LightStep::Sleep(exec)
                        }
                        _ => {
                            done.fetch_add(1, Ordering::Relaxed);
                            LightStep::Done
                        }
                    });
                } else {
                    rustwren_sim::spawn("task", move || {
                        rustwren_sim::sleep(startup);
                        rustwren_sim::sleep(exec);
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            launched += n;
            // Longest task: 35 ms startup + 60 ms exec; 100 ms covers it.
            rustwren_sim::sleep(Duration::from_millis(100));
        }
        rustwren_sim::now().as_secs_f64()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    assert_eq!(
        done.load(Ordering::Relaxed),
        tasks,
        "{name}: not every task completed"
    );
    let st = kernel.stats();
    MapArm {
        name,
        wall_secs,
        virtual_secs,
        events: events(&st),
        light_polls: st.light_polls,
    }
}

struct RunMeasure {
    wall_secs: f64,
    virtual_secs: f64,
    events: u64,
}

/// CloudSort on the partitioned plane: stage + submit + verify, measuring
/// the whole wall-clock cost of simulating it.
fn cloudsort_run(cfg: CloudSortConfig) -> RunMeasure {
    let kernel = Kernel::new();
    let cloud = SimCloud::builder()
        .seed(cfg.seed)
        .client_network(NetworkProfile::lan())
        .platform(PlatformConfig {
            concurrency_limit: cfg.maps + cfg.maps / 10 + 50,
            cluster_containers: (cfg.maps / 4).max(10),
            ..PlatformConfig::default()
        })
        .kernel(kernel.clone())
        .build();
    let wall = Instant::now();
    cloudsort::register(&cloud);
    cloudsort::stage(cloud.store(), "cloudsort", &cfg).expect("stage cloudsort input");
    let part = Partitioner::range_from_samples(cloudsort::sample_keys(&cfg), cfg.reducers);
    let (virtual_secs, results) = cloud.run(|| {
        let exec = cloud.executor().build().expect("executor");
        cloudsort::submit(
            &exec,
            "cloudsort",
            &cfg,
            ShuffleOpts {
                plane: ShufflePlane::Partitioned,
                exchange: ExchangeMode::Cos,
                partitioner: part.clone(),
                combiner: Some(cloudsort::CLOUDSORT_COMBINE_FN.into()),
                ..ShuffleOpts::default()
            },
        )
        .expect("submit");
        let results = exec.get_result().expect("results");
        (rustwren_sim::now().as_secs_f64(), results)
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    cloudsort::verify(&results, &cfg).expect("sort invariants hold");
    RunMeasure {
        wall_secs,
        virtual_secs,
        events: events(&kernel.stats()),
    }
}

struct BurstRun {
    measure: RunMeasure,
    arrivals: usize,
    /// Everything observable: per-tenant outcomes + stats + end-of-run
    /// kernel counters, for the bitwise replay gate.
    fingerprint: String,
}

/// The PR 8 two-tenant burst trace under the hybrid keep-alive policy —
/// admission control, warm-pool accounting, and the prewarm timers the
/// light-task runtime absorbs.
fn burst_run(horizon: Duration) -> BurstRun {
    let traffic = vec![
        TenantTraffic::periodic("alpha", Duration::from_secs(4)),
        TenantTraffic::poisson("beta", 0.8).with_burst(BurstWindow {
            start: Duration::from_secs(20),
            len: Duration::from_secs(15),
            multiplier: 6.0,
        }),
    ];
    let kernel = Kernel::new();
    let cloud = SimCloud::builder()
        .seed(7)
        .client_network(NetworkProfile::lan())
        .platform(PlatformConfig {
            concurrency_limit: 8,
            keep_alive: Some(KeepAlivePolicy::hybrid(Duration::from_secs(6))),
            tenants: vec![
                TenantConfig::new("alpha", 4).queue_depth(32),
                TenantConfig::new("beta", 4).queue_depth(32),
            ],
            ..PlatformConfig::default()
        })
        .kernel(kernel.clone())
        .build();
    serving::register(cloud.functions()).expect("register serve action");
    let trace = serving::generate(&traffic, &TraceConfig { horizon, seed: 7 });
    let arrivals = trace.len();
    let faas = cloud.functions().clone();
    type DriverOut = (usize, Vec<ActivationId>, u64, u64);
    let collected: Arc<Mutex<Vec<DriverOut>>> = Arc::new(Mutex::new(Vec::new()));
    let wall = Instant::now();
    let (virtual_secs, fingerprint) = cloud.run(|| {
        let origin = rustwren_sim::now();
        let handles: Vec<_> = traffic
            .iter()
            .enumerate()
            .map(|(idx, t)| {
                let arrivals: Vec<serving::Arrival> =
                    trace.iter().filter(|a| a.tenant == idx).copied().collect();
                let faas = faas.clone();
                let ns = t.namespace.clone();
                let collected = Arc::clone(&collected);
                rustwren_sim::spawn(format!("driver-{ns}"), move || {
                    let mut ids = Vec::new();
                    let (mut throttled, mut shed) = (0u64, 0u64);
                    for a in arrivals {
                        let target = origin + a.at;
                        let now = rustwren_sim::now();
                        if target > now {
                            rustwren_sim::sleep(target.duration_since(now));
                        }
                        match faas.invoke_in(&ns, SERVE_FN, serving::payload(a.exec)) {
                            Ok(id) => ids.push(id),
                            Err(InvokeError::Throttled { .. }) => throttled += 1,
                            Err(InvokeError::ShedLoad { .. }) => shed += 1,
                            Err(e) => panic!("driver {ns}: unexpected invoke error: {e}"),
                        }
                    }
                    collected
                        .lock()
                        .expect("collector")
                        .push((idx, ids, throttled, shed));
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let mut drivers = collected.lock().expect("collector").clone();
        drivers.sort_by_key(|(idx, ..)| *idx);
        let mut fp = String::new();
        for (idx, ids, throttled, shed) in drivers {
            let ok = ids.iter().filter(|&&id| faas.wait(id).is_success()).count();
            let _ = write!(fp, "tenant={idx} ok={ok} thr={throttled} shed={shed}; ");
        }
        for ns in ["alpha", "beta"] {
            let _ = write!(
                fp,
                "{ns}={:?}; ",
                faas.tenant_stats(ns).expect("tenant stats")
            );
        }
        let st = rustwren_sim::kernel().stats();
        let _ = write!(
            fp,
            "adv={} tmr={} thr={} vt={}",
            st.clock_advances,
            st.timers_scheduled,
            st.threads_started,
            rustwren_sim::now().as_nanos()
        );
        (rustwren_sim::now().as_secs_f64(), fp)
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    BurstRun {
        measure: RunMeasure {
            wall_secs,
            virtual_secs,
            events: events(&kernel.stats()),
        },
        arrivals,
        fingerprint,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (tasks, wave) = if args.smoke {
        (5_000, 1_000)
    } else {
        (100_000, 2_000)
    };
    let sort_cfg = if args.smoke {
        CloudSortConfig::smoke(args.seed)
    } else {
        CloudSortConfig::full(args.seed)
    };
    let horizon = Duration::from_secs(if args.smoke { 60 } else { 300 });

    println!("== Kernel fast path: wall-clock throughput ==");
    println!("   ({tasks} map tasks in waves of {wave}; CloudSort {} maps x {} reducers; burst horizon {}s)\n",
        sort_cfg.maps, sort_cfg.reducers, horizon.as_secs());

    let threaded = map_arm("threaded-compat", false, tasks, wave);
    let light = map_arm("lightweight", true, tasks, wave);
    assert_eq!(
        threaded.virtual_secs, light.virtual_secs,
        "arms diverged in virtual time"
    );
    assert_eq!(
        threaded.events, light.events,
        "arms diverged in scheduler events"
    );
    let speedup = light.events_per_sec() / threaded.events_per_sec();

    let sort = cloudsort_run(sort_cfg);
    let burst_a = burst_run(horizon);
    let burst_b = burst_run(horizon);
    let replay_identical = burst_a.fingerprint == burst_b.fingerprint;

    let mut table = Table::new(&[
        "Scenario",
        "Wall time",
        "Virtual time",
        "Events",
        "Events/sec",
        "Tasks/sec",
    ]);
    for a in [&threaded, &light] {
        table.row(&[
            format!("map/{}", a.name),
            format!("{:.3}s", a.wall_secs),
            format!("{:.1}s", a.virtual_secs),
            a.events.to_string(),
            format!("{:.0}", a.events_per_sec()),
            format!("{:.0}", tasks as f64 / a.wall_secs.max(1e-9)),
        ]);
    }
    table.row(&[
        "cloudsort/partitioned".to_owned(),
        format!("{:.3}s", sort.wall_secs),
        format!("{:.1}s", sort.virtual_secs),
        sort.events.to_string(),
        format!("{:.0}", sort.events as f64 / sort.wall_secs.max(1e-9)),
        "-".to_owned(),
    ]);
    table.row(&[
        "burst/two-tenant".to_owned(),
        format!("{:.3}s", burst_a.measure.wall_secs),
        format!("{:.1}s", burst_a.measure.virtual_secs),
        burst_a.measure.events.to_string(),
        format!(
            "{:.0}",
            burst_a.measure.events as f64 / burst_a.measure.wall_secs.max(1e-9)
        ),
        format!(
            "{:.0}",
            burst_a.arrivals as f64 / burst_a.measure.wall_secs.max(1e-9)
        ),
    ]);
    println!("{table}");
    println!(
        "lightweight vs threaded-compat: {speedup:.1}x events/sec ({} light polls replaced {} thread handoffs)",
        light.light_polls, threaded.events
    );
    println!(
        "burst replay: {}\n",
        if replay_identical {
            "bitwise identical"
        } else {
            "DIVERGED"
        }
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"seed\":{},\"smoke\":{},\"map\":{{\"tasks\":{tasks},\"wave\":{wave}",
        args.seed, args.smoke
    );
    for a in [&threaded, &light] {
        let _ = write!(
            json,
            ",\"{}\":{{\"wall_secs\":{:.4},\"virtual_secs\":{:.2},\"events\":{},\"events_per_sec\":{:.0},\"tasks_per_sec\":{:.0}}}",
            if a.name == "lightweight" { "light" } else { "threaded" },
            a.wall_secs,
            a.virtual_secs,
            a.events,
            a.events_per_sec(),
            tasks as f64 / a.wall_secs.max(1e-9)
        );
    }
    let _ = write!(json, ",\"speedup_events_per_sec\":{speedup:.2}}}");
    let _ = write!(
        json,
        ",\"cloudsort\":{{\"maps\":{},\"reducers\":{},\"wall_secs\":{:.4},\"virtual_secs\":{:.2},\"events\":{},\"events_per_sec\":{:.0}}}",
        sort_cfg.maps,
        sort_cfg.reducers,
        sort.wall_secs,
        sort.virtual_secs,
        sort.events,
        sort.events as f64 / sort.wall_secs.max(1e-9)
    );
    let _ = write!(
        json,
        ",\"burst\":{{\"arrivals\":{},\"wall_secs\":{:.4},\"virtual_secs\":{:.2},\"events\":{},\"activations_per_sec\":{:.0},\"replay_identical\":{replay_identical}}}",
        burst_a.arrivals,
        burst_a.measure.wall_secs,
        burst_a.measure.virtual_secs,
        burst_a.measure.events,
        burst_a.arrivals as f64 / burst_a.measure.wall_secs.max(1e-9)
    );
    let _ = write!(
        json,
        ",\"gates\":{{\"map_speedup_min\":5.0,\"map_speedup\":{speedup:.2},\"burst_replay_identical\":{replay_identical}}}}}"
    );
    json.push('\n');
    std::fs::write("BENCH_kernel.json", &json).expect("writing BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");

    // Regression gates, at any scale.
    assert!(
        speedup >= 5.0,
        "lightweight arm must clear 5x events/sec over the threaded compat arm (got {speedup:.2}x)"
    );
    assert!(
        replay_identical,
        "burst trace replay diverged:\n  a: {}\n  b: {}",
        burst_a.fingerprint, burst_b.fingerprint
    );
}
