//! Fig 5 — the rendered tone map (qualitative).
//!
//! Runs the §6.4 MapReduce over a subset of cities and writes each city's
//! SVG tone map (green = good, blue = neutral, red = bad comments) to
//! `target/fig5/`. The New York map corresponds to the paper's Fig 5.
//!
//! Run: `cargo run --release -p rustwren-bench --bin fig5_tonemap`

use std::fs;
use std::path::PathBuf;

use rustwren_bench::BenchArgs;
use rustwren_core::{DataSource, MapReduceOpts, ObjectRef, SimCloud, SpawnStrategy, Value};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::{airbnb, tone};

fn main() {
    let args = BenchArgs::parse();
    let cities: Vec<&str> = if args.smoke {
        vec!["new-york"]
    } else {
        vec!["new-york", "amsterdam", "barcelona", "san-francisco"]
    };
    let scale = if args.smoke { 1 << 14 } else { 256 };

    let cloud = SimCloud::builder()
        .seed(args.seed)
        .client_network(NetworkProfile::wan())
        .build();
    let dataset = airbnb::generate(cloud.store(), "reviews", scale, args.seed)
        .expect("stage reviews dataset");
    tone::register(&cloud);

    let keys: Vec<ObjectRef> = cities
        .iter()
        .map(|c| ObjectRef::new(dataset.bucket.clone(), airbnb::AirbnbDataset::key(c)))
        .collect();

    let cloud2 = cloud.clone();
    let results = cloud.run(move || {
        let exec = cloud2
            .executor()
            .spawn(SpawnStrategy::massive())
            .build()
            .expect("executor");
        exec.map_reduce(
            tone::TONE_MAP_FN,
            DataSource::Keys(keys),
            tone::TONE_REDUCE_FN,
            MapReduceOpts {
                chunk_size: Some(8 << 20),
                reducer_one_per_object: true,
            },
        )
        .expect("map_reduce");
        exec.get_result().expect("results")
    });

    let out_dir = PathBuf::from("target/fig5");
    fs::create_dir_all(&out_dir).expect("create output dir");
    println!("== Fig 5: tone maps (green good / blue neutral / red bad) ==\n");
    for city in results {
        let name = city.get("city").and_then(Value::as_str).expect("city name");
        let svg = city.get("svg").and_then(Value::as_str).expect("svg");
        let pos = city.get("positive").and_then(Value::as_i64).unwrap_or(0);
        let neu = city.get("neutral").and_then(Value::as_i64).unwrap_or(0);
        let neg = city.get("negative").and_then(Value::as_i64).unwrap_or(0);
        let path = out_dir.join(format!("{}.svg", name.trim_end_matches(".csv")));
        fs::write(&path, svg).expect("write svg");
        println!(
            "{name}: {pos} good / {neu} neutral / {neg} bad (sampled) -> {}",
            path.display()
        );
    }
}
