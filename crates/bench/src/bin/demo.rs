//! `demo` — interactive showcase CLI for the rustwren stack.
//!
//! ```text
//! cargo run --release -p rustwren-bench --bin demo -- <scenario> [flags]
//!
//! scenarios:
//!   map        parallel map of add-7 over N integers
//!   mapreduce  tone analysis over the synthetic Airbnb dataset
//!   shuffle    word count with a hash-partitioned shuffle stage
//!   sort       nested-parallel mergesort
//!   pi         Monte-Carlo π estimation
//!
//! flags:
//!   --tasks N          parallel tasks / inputs        (default 100)
//!   --network wan|lan  client network position        (default wan)
//!   --spawn direct|massive|auto                       (default auto)
//!   --seed N           deterministic seed             (default 42)
//! ```

use rustwren_core::{
    DataSource, MapReduceOpts, ShuffleOpts, SimCloud, SpawnStrategy, TaskCtx, Value,
};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::{airbnb, mergesort, montecarlo, tone};

#[derive(Debug)]
struct Args {
    scenario: String,
    tasks: usize,
    network: NetworkProfile,
    spawn: SpawnStrategy,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: demo <map|mapreduce|shuffle|sort|pi> [--tasks N] [--network wan|lan] \
         [--spawn direct|massive|auto] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(scenario) = argv.next() else { usage() };
    let mut args = Args {
        scenario,
        tasks: 100,
        network: NetworkProfile::wan(),
        spawn: SpawnStrategy::Auto { threshold: 50 },
        seed: 42,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--tasks" => args.tasks = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--network" => {
                args.network = match value().as_str() {
                    "wan" => NetworkProfile::wan(),
                    "lan" => NetworkProfile::lan(),
                    _ => usage(),
                }
            }
            "--spawn" => {
                args.spawn = match value().as_str() {
                    "direct" => SpawnStrategy::default(),
                    "massive" => SpawnStrategy::massive(),
                    "auto" => SpawnStrategy::Auto { threshold: 50 },
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cloud = SimCloud::builder()
        .seed(args.seed)
        .client_network(args.network.clone())
        .build();
    println!(
        "cloud: client {} | spawn {:?} | seed {}",
        args.network, args.spawn, args.seed
    );
    match args.scenario.as_str() {
        "map" => demo_map(&cloud, &args),
        "mapreduce" => demo_mapreduce(&cloud, &args),
        "shuffle" => demo_shuffle(&cloud, &args),
        "sort" => demo_sort(&cloud, &args),
        "pi" => demo_pi(&cloud, &args),
        _ => usage(),
    }
    let stats = cloud.functions().stats();
    println!(
        "\nplatform: {} invocations, {} cold starts, {} warm starts, {} throttled",
        stats.submitted, stats.cold_starts, stats.warm_starts, stats.throttled
    );
    println!("virtual time: {}", cloud.kernel().now());
}

fn demo_map(cloud: &SimCloud, args: &Args) {
    cloud.register_fn("add7", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(v.as_i64().ok_or("int")? + 7))
    });
    let (n, spawn) = (args.tasks, args.spawn.clone());
    let cloud2 = cloud.clone();
    let results = cloud.run(move || {
        let exec = cloud2.executor().spawn(spawn).build().expect("executor");
        exec.map("add7", (0..n as i64).map(Value::from))
            .expect("map");
        exec.get_result().expect("results")
    });
    println!(
        "map: {} results, first {:?}, last {:?}",
        results.len(),
        results[0],
        results[results.len() - 1]
    );
}

fn demo_mapreduce(cloud: &SimCloud, args: &Args) {
    let dataset = airbnb::generate(cloud.store(), "reviews", 1 << 13, args.seed)
        .expect("stage reviews dataset");
    tone::register(cloud);
    let spawn = args.spawn.clone();
    let cloud2 = cloud.clone();
    let results = cloud.run(move || {
        let exec = cloud2.executor().spawn(spawn).build().expect("executor");
        exec.map_reduce(
            tone::TONE_MAP_FN,
            DataSource::bucket(&dataset.bucket),
            tone::TONE_REDUCE_FN,
            MapReduceOpts {
                chunk_size: Some(32 << 20),
                reducer_one_per_object: true,
            },
        )
        .expect("map_reduce");
        exec.get_result().expect("results")
    });
    println!("mapreduce: {} city tone maps rendered", results.len());
    for city in results.iter().take(5) {
        println!(
            "  {:<16} {:>5} good / {:>5} neutral / {:>5} bad",
            city.get("city").and_then(Value::as_str).unwrap_or("?"),
            city.get("positive").and_then(Value::as_i64).unwrap_or(0),
            city.get("neutral").and_then(Value::as_i64).unwrap_or(0),
            city.get("negative").and_then(Value::as_i64).unwrap_or(0),
        );
    }
}

fn demo_shuffle(cloud: &SimCloud, args: &Args) {
    cloud.register_fn("tokenize", |_ctx: &TaskCtx, v: Value| {
        let n = v.as_i64().ok_or("int")?;
        // Synthesize a tiny "document" per task.
        let words = ["cloud", "function", "serverless", "data", "wren"];
        Ok(Value::List(
            (0..20)
                .map(|i| {
                    Value::map()
                        .with("k", words[((n + i) % 5) as usize])
                        .with("v", 1i64)
                })
                .collect(),
        ))
    });
    cloud.register_fn("count", |_ctx: &TaskCtx, v: Value| {
        let groups = v.get("groups").and_then(Value::as_map).ok_or("groups")?;
        Ok(Value::Map(
            groups
                .iter()
                .map(|(k, vals)| {
                    (
                        k.clone(),
                        Value::Int(vals.as_list().map_or(0, |l| l.len()) as i64),
                    )
                })
                .collect(),
        ))
    });
    let (n, spawn) = (args.tasks, args.spawn.clone());
    let cloud2 = cloud.clone();
    let results = cloud.run(move || {
        let exec = cloud2.executor().spawn(spawn).build().expect("executor");
        exec.map_shuffle_reduce(
            "tokenize",
            DataSource::Values((0..n as i64).map(Value::from).collect()),
            "count",
            ShuffleOpts {
                reducers: 4,
                chunk_size: None,
                ..ShuffleOpts::default()
            },
        )
        .expect("shuffle");
        exec.get_result().expect("results")
    });
    println!("shuffle: word counts across {} reducers:", results.len());
    for (r, counts) in results.iter().enumerate() {
        let words: Vec<String> = counts
            .as_map()
            .map(|m| m.iter().map(|(k, v)| format!("{k}={v}")).collect())
            .unwrap_or_default();
        println!("  reducer {r}: {}", words.join(", "));
    }
}

fn demo_sort(cloud: &SimCloud, args: &Args) {
    mergesort::register(cloud);
    let n = (args.tasks as u64).max(4) * 1_000;
    let cloud2 = cloud.clone();
    let seed = args.seed;
    let (len, secs) = cloud.run(move || {
        let t0 = rustwren_sim::now();
        let exec = cloud2.executor().build().expect("executor");
        exec.call_async(mergesort::MERGESORT_FN, mergesort::input(seed, n, 2))
            .expect("call_async");
        let results = exec.get_result().expect("results");
        let sorted = mergesort::decode_i64s(results[0].as_bytes().expect("bytes"));
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        (sorted.len(), (rustwren_sim::now() - t0).as_secs_f64())
    });
    println!("sort: {len} integers sorted by 7 functions (depth 2) in {secs:.1}s virtual");
}

fn demo_pi(cloud: &SimCloud, args: &Args) {
    montecarlo::register(cloud);
    let (n, spawn, seed) = (args.tasks, args.spawn.clone(), args.seed);
    let cloud2 = cloud.clone();
    let results = cloud.run(move || {
        let exec = cloud2.executor().spawn(spawn).build().expect("executor");
        exec.map_reduce(
            montecarlo::PI_SAMPLE_FN,
            DataSource::Values(
                (0..n as u64)
                    .map(|i| montecarlo::input(seed.wrapping_add(i), 100_000))
                    .collect(),
            ),
            montecarlo::PI_COMBINE_FN,
            MapReduceOpts::default(),
        )
        .expect("map_reduce");
        exec.get_result().expect("results")
    });
    let pi = montecarlo::estimate_from(&results[0]).expect("estimate");
    let samples = results[0].req_i64("samples").unwrap_or(0);
    println!(
        "pi: {pi:.6} from {samples} samples across {n} functions (true π = {:.6}, error {:+.6})",
        std::f64::consts::PI,
        pi - std::f64::consts::PI
    );
}
