//! §5.1 — Massive Function Spawning: invocation-time table.
//!
//! Reproduces the numbers quoted in the paper's text: spawning 1,000
//! functions takes ~8 s from a low-latency network, ~40 s from a
//! high-latency one, ~20 s through a single remote invoker function, and
//! ~8 s with grouped remote invokers (100 invocations per group).
//!
//! Run: `cargo run --release -p rustwren-bench --bin sec51_invocation`

use rustwren_bench::{fmt_secs, BenchArgs, Table};
use rustwren_core::stats::JobReport;
use rustwren_core::{SimCloud, SpawnStrategy};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::compute;

struct Scenario {
    name: &'static str,
    paper: &'static str,
    client: NetworkProfile,
    strategy: SpawnStrategy,
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.scaled(1_000, 60);
    let task_secs = 50.0;

    let scenarios = [
        Scenario {
            name: "LAN client, direct",
            paper: "~8s",
            client: NetworkProfile::lan(),
            strategy: SpawnStrategy::Direct { client_threads: 5 },
        },
        Scenario {
            name: "WAN client, direct",
            paper: "~40s",
            client: NetworkProfile::wan(),
            strategy: SpawnStrategy::Direct { client_threads: 5 },
        },
        Scenario {
            name: "WAN client, single remote invoker",
            paper: "~20s",
            client: NetworkProfile::wan(),
            strategy: SpawnStrategy::RemoteInvoker {
                group_size: n,
                invoker_threads: 2,
            },
        },
        Scenario {
            name: "WAN client, invoker groups of 100",
            paper: "~8s",
            client: NetworkProfile::wan(),
            strategy: SpawnStrategy::RemoteInvoker {
                group_size: args.scaled(100, 10),
                invoker_threads: 2,
            },
        },
    ];

    println!("== §5.1 Massive Function Spawning: {n} invocations of a {task_secs}s task ==\n");
    let mut table = Table::new(&["Scenario", "Paper", "Invocation phase", "Total job"]);

    for s in scenarios {
        let (report, start) =
            run_scenario(&args, s.client.clone(), s.strategy.clone(), n, task_secs);
        table.row(&[
            s.name.to_owned(),
            s.paper.to_owned(),
            fmt_secs(report.invocation_phase(start).as_secs_f64()),
            fmt_secs(report.total(start).as_secs_f64()),
        ]);
    }
    println!("{table}");
    println!("(invocation phase = time until all {n} functions are up and running)");
}

fn run_scenario(
    args: &BenchArgs,
    client: NetworkProfile,
    strategy: SpawnStrategy,
    n: usize,
    task_secs: f64,
) -> (JobReport, rustwren_sim::SimInstant) {
    // The invoker activations count against the namespace limit too; the
    // paper notes the 1,000 default "can be increased if needed".
    let mut platform = rustwren_faas::PlatformConfig::default();
    platform.concurrency_limit = n + n / 10 + 50;
    platform.cluster_containers = platform.concurrency_limit + 200;
    let cloud = SimCloud::builder()
        .seed(args.seed)
        .platform(platform)
        .client_network(client)
        .build();
    compute::register(&cloud);
    let cloud2 = cloud.clone();
    let start = cloud.run(move || {
        let t0 = rustwren_sim::now();
        let exec = cloud2.executor().spawn(strategy).build().expect("executor");
        exec.map(
            compute::COMPUTE_FN,
            (0..n).map(|_| compute::input(task_secs)),
        )
        .expect("map");
        exec.get_result().expect("results");
        t0
    });
    let records: Vec<_> = cloud
        .functions()
        .records()
        .into_iter()
        .filter(|r| r.action.starts_with("rustwren-agent@"))
        .collect();
    let report = JobReport::from_records(&records).expect("agents ran");
    assert_eq!(report.count, n, "every function must have run");
    (report, start)
}
