//! Data-path ablation — hot-path COS round-trip elimination.
//!
//! A 1,000-task small-input map job runs under four data-path arms:
//! baseline (every round trip, the seed framework's data path), inline
//! payloads, inline + warm-container blob cache, and all three (adding
//! batched dep-watching, which engages in the reduce phase). A separate
//! map_reduce job isolates the dep-watch effect: one reducer watching
//! hundreds of maps with per-key probes vs one batched LIST per tick.
//!
//! Prints the comparison tables and writes `BENCH_datapath.json` with the
//! virtual times and per-phase COS op counts, then fails (exit 1) unless
//! the fully-optimised arm is strictly faster *and* strictly cheaper than
//! the baseline — the regression gate CI runs in smoke mode.
//!
//! Run: `cargo run --release -p rustwren-bench --bin datapath`

use std::fmt::Write as _;

use rustwren_bench::{fmt_secs, BenchArgs, Table};
use rustwren_core::stats::CosOpStats;
use rustwren_core::{
    DataPathConfig, DataSource, MapReduceOpts, SimCloud, SpawnStrategy, TaskCtx, Value,
};
use rustwren_faas::PlatformConfig;
use rustwren_sim::NetworkProfile;
use rustwren_store::OpCounts;

/// One measured ablation arm.
struct Arm {
    name: &'static str,
    secs: f64,
    ops: CosOpStats,
}

/// Containers well below the task count: activations run in waves over
/// warm containers, the regime where the blob cache engages. The
/// concurrency limit keeps generous headroom so nothing throttles.
fn platform(tasks: usize) -> PlatformConfig {
    PlatformConfig {
        concurrency_limit: tasks + tasks / 10 + 50,
        cluster_containers: (tasks / 4).max(10),
        ..PlatformConfig::default()
    }
}

fn build_cloud(seed: u64, tasks: usize) -> SimCloud {
    // The paper's setting: the client drives the job from outside the cloud,
    // so every staging PUT and gather GET pays a WAN round trip. That is the
    // regime where eliminating client↔COS round trips matters most.
    let cloud = SimCloud::builder()
        .seed(seed)
        .platform(platform(tasks))
        .client_network(NetworkProfile::wan())
        .build();
    cloud.register_fn("add7", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(v.as_i64().ok_or("int")? + 7))
    });
    cloud.register_fn("sum", |_ctx: &TaskCtx, v: Value| {
        let total: i64 = v
            .req_list("results")?
            .iter()
            .filter_map(Value::as_i64)
            .sum();
        Ok(Value::Int(total))
    });
    cloud
}

/// Runs the ablation's map job under one data-path arm. Every arm
/// tree-spawns its invocations (`SpawnStrategy::massive`), so submission
/// cost is identical across arms and only the data path varies.
fn run_map_arm(name: &'static str, seed: u64, tasks: usize, dp: DataPathConfig) -> Arm {
    let cloud = build_cloud(seed, tasks);
    let cloud2 = cloud.clone();
    let (secs, ops) = cloud.run(move || {
        let t0 = rustwren_sim::now().as_nanos();
        let exec = cloud2
            .executor()
            .data_path(dp)
            .spawn(SpawnStrategy::massive())
            .build()
            .expect("executor");
        exec.map("add7", (0..tasks as i64).map(Value::from))
            .expect("map");
        exec.get_result().expect("results");
        let secs = (rustwren_sim::now().as_nanos() - t0) as f64 / 1e9;
        (secs, exec.cos_op_stats())
    });
    Arm { name, secs, ops }
}

/// Runs the dep-watch job (maps + one reducer) under one arm.
fn run_reduce_arm(name: &'static str, seed: u64, tasks: usize, dp: DataPathConfig) -> Arm {
    let cloud = build_cloud(seed, tasks);
    let cloud2 = cloud.clone();
    let (secs, ops) = cloud.run(move || {
        let t0 = rustwren_sim::now().as_nanos();
        let exec = cloud2
            .executor()
            .data_path(dp)
            .spawn(SpawnStrategy::massive())
            .build()
            .expect("executor");
        exec.map_reduce(
            "add7",
            DataSource::Values((0..tasks as i64).map(Value::from).collect()),
            "sum",
            MapReduceOpts::default(),
        )
        .expect("map_reduce");
        exec.get_result().expect("results");
        let secs = (rustwren_sim::now().as_nanos() - t0) as f64 / 1e9;
        (secs, exec.cos_op_stats())
    });
    Arm { name, secs, ops }
}

fn ops_json(o: OpCounts) -> String {
    format!(
        "{{\"gets\":{},\"puts\":{},\"lists\":{},\"heads\":{},\"deletes\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
        o.gets, o.puts, o.lists, o.heads, o.deletes, o.bytes_in, o.bytes_out
    )
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"name\":\"{}\",\"virtual_secs\":{:.3},\"staging\":{},\"polling\":{},\"agent\":{},\"total_ops\":{},\"total_bytes\":{}}}",
        a.name,
        a.secs,
        ops_json(a.ops.staging),
        ops_json(a.ops.polling),
        ops_json(a.ops.agent),
        a.ops.total_ops(),
        a.ops.total_bytes()
    )
}

fn arm_row(table: &mut Table, a: &Arm) {
    table.row(&[
        a.name.to_owned(),
        fmt_secs(a.secs),
        a.ops.staging.total_ops().to_string(),
        a.ops.polling.total_ops().to_string(),
        a.ops.agent.total_ops().to_string(),
        a.ops.total_ops().to_string(),
    ]);
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.scaled(1_000, 120);
    let n_reduce = args.scaled(300, 40);

    println!("== Data-path ablation: COS round trips per phase ==");
    println!(
        "   ({n}-task small-input map, {} containers)\n",
        platform(n).cluster_containers
    );

    let inline_only = DataPathConfig {
        inline_input_max_bytes: DataPathConfig::DEFAULT_INLINE_MAX_BYTES,
        ..DataPathConfig::staged()
    };
    let inline_cache = DataPathConfig {
        batched_dep_watch: false,
        ..DataPathConfig::default()
    };
    let arms = [
        run_map_arm("baseline", args.seed, n, DataPathConfig::staged()),
        run_map_arm("inline", args.seed, n, inline_only.clone()),
        run_map_arm("inline+cache", args.seed, n, inline_cache.clone()),
        run_map_arm("all-three", args.seed, n, DataPathConfig::default()),
    ];

    let mut table = Table::new(&[
        "Arm",
        "Virtual time",
        "Staging ops",
        "Polling ops",
        "Agent ops",
        "Total ops",
    ]);
    for a in &arms {
        arm_row(&mut table, a);
    }
    println!("{table}");

    let base = &arms[0];
    let best = &arms[3];
    let time_cut = 100.0 * (1.0 - best.secs / base.secs);
    let ops_ratio = base.ops.total_ops() as f64 / best.ops.total_ops() as f64;
    println!(
        "all-three vs baseline: {time_cut:.1}% less virtual time, {ops_ratio:.2}x fewer COS ops\n"
    );

    println!("== Dep-watch: one reducer over {n_reduce} maps ==\n");
    let watch_arms = [
        run_reduce_arm("per-key probes", args.seed, n_reduce, inline_cache),
        run_reduce_arm(
            "batched LIST",
            args.seed,
            n_reduce,
            DataPathConfig::default(),
        ),
    ];
    let mut watch_table = Table::new(&[
        "Arm",
        "Virtual time",
        "Staging ops",
        "Polling ops",
        "Agent ops",
        "Total ops",
    ]);
    for a in &watch_arms {
        arm_row(&mut watch_table, a);
    }
    println!("{watch_table}");

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"tasks\":{n},\"seed\":{},\"smoke\":{},\"arms\":[",
        args.seed, args.smoke
    );
    for (i, a) in arms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&arm_json(a));
    }
    let _ = write!(
        json,
        "],\"time_reduction_pct\":{time_cut:.1},\"ops_ratio\":{ops_ratio:.2},\"dep_watch\":{{\"tasks\":{n_reduce},\"arms\":["
    );
    for (i, a) in watch_arms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&arm_json(a));
    }
    json.push_str("]}}\n");
    std::fs::write("BENCH_datapath.json", &json).expect("writing BENCH_datapath.json");
    println!("wrote BENCH_datapath.json");

    // Regression gate: the optimised data path must be strictly faster and
    // strictly cheaper than the baseline, at any scale.
    assert!(
        best.secs < base.secs,
        "all-three ({}s) must beat baseline ({}s)",
        best.secs,
        base.secs
    );
    assert!(
        best.ops.total_ops() < base.ops.total_ops(),
        "all-three ({} ops) must be cheaper than baseline ({} ops)",
        best.ops.total_ops(),
        base.ops.total_ops()
    );
    assert!(
        watch_arms[1].ops.total_ops() < watch_arms[0].ops.total_ops(),
        "batched dep-watch must be cheaper than per-key probes"
    );
}
