//! Fig 3 — Elasticity and concurrency.
//!
//! Workloads of 500, 1,000, 1,500 and 2,000 concurrent invocations of a
//! ~60-second compute-bound task, with massive function spawning enabled.
//! The paper's claim: full concurrency is reached in every case (the black
//! line meets the target), with visible per-function execution-time
//! variability (gray lines), and the platform scales by +500 functions per
//! step without trouble.
//!
//! Run: `cargo run --release -p rustwren-bench --bin fig3_elasticity`

use rustwren_bench::{ascii_series, fmt_secs, BenchArgs, Table};
use rustwren_core::stats::{concurrency_series, JobReport};
use rustwren_core::{SimCloud, SpawnStrategy};
use rustwren_faas::PlatformConfig;
use rustwren_sim::NetworkProfile;
use rustwren_workloads::compute;

fn main() {
    let args = BenchArgs::parse();
    let workloads: Vec<usize> = if args.smoke {
        vec![30, 60]
    } else {
        vec![500, 1_000, 1_500, 2_000]
    };

    println!("== Fig 3: elasticity and concurrency (massive spawning, ~60s tasks) ==\n");
    let mut table = Table::new(&[
        "Workload",
        "Peak concurrency",
        "Full concurrency?",
        "Invocation phase",
        "Exec time spread",
        "Total",
    ]);

    for &n in &workloads {
        // The paper notes the 1,000-invocation default limit can be raised;
        // they ran up to 2,000.
        let mut platform = PlatformConfig::default();
        platform.concurrency_limit = (n + n / 10 + 50).max(platform.concurrency_limit);
        platform.cluster_containers = platform.concurrency_limit + 200;

        let cloud = SimCloud::builder()
            .seed(args.seed)
            .platform(platform)
            .client_network(NetworkProfile::wan())
            .build();
        compute::register(&cloud);
        let cloud2 = cloud.clone();
        let t0 = cloud.run(move || {
            let t0 = rustwren_sim::now();
            let exec = cloud2
                .executor()
                .spawn(SpawnStrategy::massive())
                .build()
                .expect("executor");
            exec.map(compute::COMPUTE_FN, (0..n).map(|_| compute::input(60.0)))
                .expect("map");
            exec.get_result().expect("results");
            t0
        });

        let records: Vec<_> = cloud
            .functions()
            .records()
            .into_iter()
            .filter(|r| r.action.starts_with("rustwren-agent@"))
            .collect();
        let report = JobReport::from_records(&records).expect("agents ran");
        let series = concurrency_series(&records);
        let peak = series.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let durations: Vec<f64> = records
            .iter()
            .filter_map(|r| r.exec_duration())
            .map(|d| d.as_secs_f64())
            .collect();
        let dmin = durations.iter().cloned().fold(f64::MAX, f64::min);
        let dmax = durations.iter().cloned().fold(0.0f64, f64::max);

        println!("--- {n} concurrent invocations ---");
        println!("{}", ascii_series(&series, 72, 10));
        table.row(&[
            n.to_string(),
            peak.to_string(),
            if peak == n {
                "yes".into()
            } else {
                format!("NO ({peak}/{n})")
            },
            fmt_secs(report.invocation_phase(t0).as_secs_f64()),
            format!("{}..{}", fmt_secs(dmin), fmt_secs(dmax)),
            fmt_secs(report.total(t0).as_secs_f64()),
        ]);
    }
    println!("{table}");
    println!("(paper: the concurrency line meets the target size in all four workloads;");
    println!(" execution times vary between functions due to cluster heterogeneity)");
}
