//! Fig 2 — Local invocation vs Massive Function Spawning.
//!
//! 1,000 invocations of a 50-second compute-bound task from a high-latency
//! (WAN) client. The paper reports: local (direct) invocation finishes the
//! invocation phase in 38 s and the whole experiment in 88 s; massive
//! spawning reaches full concurrency in 8 s and finishes in 58 s — a 5×
//! faster invocation phase. The plot is concurrency over time.
//!
//! Run: `cargo run --release -p rustwren-bench --bin fig2_spawning`

use rustwren_bench::{ascii_series, fmt_secs, BenchArgs, Table};
use rustwren_core::stats::{concurrency_series, JobReport};
use rustwren_core::{SimCloud, SpawnStrategy};
use rustwren_sim::NetworkProfile;
use rustwren_workloads::compute;

fn main() {
    let args = BenchArgs::parse();
    let n = args.scaled(1_000, 60);

    println!("== Fig 2: local invocation vs massive function spawning ==");
    println!("   ({n} functions x 50s compute, WAN client)\n");

    let mut table = Table::new(&[
        "Strategy",
        "Invocation phase",
        "Paper",
        "Total",
        "Paper total",
        "Peak concurrency",
    ]);

    for (label, paper_inv, paper_total, strategy) in [
        (
            "Local (direct from client)",
            "38s",
            "88s",
            SpawnStrategy::Direct { client_threads: 5 },
        ),
        (
            "Massive function spawning",
            "8s",
            "58s",
            SpawnStrategy::massive(),
        ),
    ] {
        // Leave headroom above the 1,000 agents for the invoker functions
        // (the paper's limit was raised when needed).
        let mut platform = rustwren_faas::PlatformConfig::default();
        platform.concurrency_limit = n + n / 10 + 50;
        platform.cluster_containers = platform.concurrency_limit + 200;
        let cloud = SimCloud::builder()
            .seed(args.seed)
            .platform(platform)
            .client_network(NetworkProfile::wan())
            .build();
        compute::register(&cloud);
        let cloud2 = cloud.clone();
        let t0 = cloud.run(move || {
            let t0 = rustwren_sim::now();
            let exec = cloud2.executor().spawn(strategy).build().expect("executor");
            exec.map(compute::COMPUTE_FN, (0..n).map(|_| compute::input(50.0)))
                .expect("map");
            exec.get_result().expect("results");
            t0
        });

        let records: Vec<_> = cloud
            .functions()
            .records()
            .into_iter()
            .filter(|r| r.action.starts_with("rustwren-agent@"))
            .collect();
        let report = JobReport::from_records(&records).expect("agents ran");
        let series = concurrency_series(&records);
        let peak = series.iter().map(|&(_, c)| c).max().unwrap_or(0);

        println!("--- {label} ---");
        println!("{}", ascii_series(&series, 72, 10));
        table.row(&[
            label.to_owned(),
            fmt_secs(report.invocation_phase(t0).as_secs_f64()),
            paper_inv.to_owned(),
            fmt_secs(report.total(t0).as_secs_f64()),
            paper_total.to_owned(),
            peak.to_string(),
        ]);
    }
    println!("{table}");
}
