//! Multi-tenant serving bench — trace-driven admission control and
//! keep-alive/prewarm ablation.
//!
//! Replays seeded Azure-Functions-style arrival traces (see
//! `rustwren_workloads::serving`) against the platform's tenant admission
//! plane and measures what a serving operator cares about:
//!
//! 1. **Keep-alive A/B** — the same periodic multi-tenant trace under
//!    `KeepAlivePolicy::FixedTtl` vs `KeepAlivePolicy::HybridHistogram`:
//!    cold-start rate and warm-pool cost (container-idle seconds) per arm.
//! 2. **Noisy neighbor** — a victim tenant measured alone (isolated
//!    baseline), then again while a noisy tenant bursts its arrival rate
//!    10×: per-tenant p50/p99 completion latency, shed and throttle counts.
//! 3. **Bitwise replay** — the noisy-neighbor arm runs twice with the same
//!    seed and must produce byte-identical results.
//!
//! Prints the comparison tables and writes `BENCH_serving.json`, then fails
//! (exit 1) unless (a) the hybrid-histogram arm has a strictly lower
//! cold-start rate than fixed-TTL at no more than 1.05× its warm-pool
//! cost, and (b) fair admission keeps the victim's p99 within 2× of its
//! isolated baseline during the 10× burst — the regression gates CI runs
//! in smoke mode.
//!
//! Run: `cargo run --release -p rustwren-bench --bin serving`

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rustwren_bench::{BenchArgs, Table};
use rustwren_core::SimCloud;
use rustwren_faas::{
    ActivationId, InvokeError, KeepAlivePolicy, PlatformConfig, TenantConfig, TenantStats,
};
use rustwren_workloads::serving::{
    self, Arrival, BurstWindow, ExecMix, TenantTraffic, TraceConfig, SERVE_FN,
};

/// Per-tenant measurement from one replay.
#[derive(Debug, Clone, PartialEq)]
struct TenantOut {
    namespace: String,
    submitted: u64,
    completed: u64,
    p50_ms: f64,
    p99_ms: f64,
    cold_rate: f64,
    warm_pool_secs: f64,
    prewarmed: u64,
    shed: u64,
    throttled: u64,
}

/// One replayed arm.
#[derive(Debug, Clone, PartialEq)]
struct ArmOut {
    name: String,
    horizon_secs: f64,
    inv_per_sec: f64,
    tenants: Vec<TenantOut>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Replays `traffic` over `horizon` against a platform configured with
/// `platform`, open-loop (one driver thread per tenant; arrivals are never
/// delayed by earlier invocations' latency). Returns per-tenant latency
/// percentiles and the platform's tenant counters.
fn replay(
    name: &str,
    seed: u64,
    platform: PlatformConfig,
    traffic: &[TenantTraffic],
    horizon: Duration,
) -> ArmOut {
    let cloud = SimCloud::builder().seed(seed).platform(platform).build();
    serving::register(cloud.functions()).expect("register serve action");
    let trace = serving::generate(traffic, &TraceConfig { horizon, seed });
    let faas = cloud.functions().clone();

    type DriverOut = (usize, Vec<ActivationId>, u64, u64);
    let collected: Arc<Mutex<Vec<DriverOut>>> = Arc::new(Mutex::new(Vec::new()));
    let tenants_out = cloud.run(|| {
        let origin = rustwren_sim::now();
        let handles: Vec<_> = traffic
            .iter()
            .enumerate()
            .map(|(idx, t)| {
                let arrivals: Vec<Arrival> =
                    trace.iter().filter(|a| a.tenant == idx).copied().collect();
                let faas = faas.clone();
                let ns = t.namespace.clone();
                let collected = Arc::clone(&collected);
                rustwren_sim::spawn(format!("driver-{ns}"), move || {
                    let mut ids = Vec::new();
                    let (mut throttled, mut shed) = (0u64, 0u64);
                    for a in arrivals {
                        let target = origin + a.at;
                        let now = rustwren_sim::now();
                        if target > now {
                            rustwren_sim::sleep(target.duration_since(now));
                        }
                        match faas.invoke_in(&ns, SERVE_FN, serving::payload(a.exec)) {
                            Ok(id) => ids.push(id),
                            Err(InvokeError::Throttled { .. }) => throttled += 1,
                            Err(InvokeError::ShedLoad { .. }) => shed += 1,
                            Err(e) => panic!("driver {ns}: unexpected invoke error: {e}"),
                        }
                    }
                    collected.lock().unwrap().push((idx, ids, throttled, shed));
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let mut drivers = collected.lock().unwrap().clone();
        drivers.sort_by_key(|(idx, ..)| *idx);

        // Latencies: submit → end, completed activations only.
        let mut out = Vec::new();
        for (idx, ids, client_throttled, client_shed) in drivers {
            let ns = &traffic[idx].namespace;
            let mut lat_ms: Vec<f64> = Vec::new();
            let mut completed = 0u64;
            for id in &ids {
                let record = faas.wait(*id);
                if record.is_success() {
                    completed += 1;
                    if let Some(d) = record.total_duration() {
                        lat_ms.push(d.as_secs_f64() * 1e3);
                    }
                }
            }
            lat_ms.sort_by(f64::total_cmp);
            let stats: TenantStats = faas.tenant_stats(ns).unwrap_or_default();
            out.push(TenantOut {
                namespace: ns.clone(),
                submitted: ids.len() as u64 + client_throttled + client_shed,
                completed,
                p50_ms: percentile(&lat_ms, 0.50),
                p99_ms: percentile(&lat_ms, 0.99),
                cold_rate: stats.cold_start_rate(),
                warm_pool_secs: stats.warm_pool_seconds,
                prewarmed: stats.prewarmed,
                shed: stats.shed + client_shed,
                throttled: stats.throttled + client_throttled,
            });
        }
        out
    });

    let completed_total: u64 = tenants_out.iter().map(|t| t.completed).sum();
    ArmOut {
        name: name.to_owned(),
        horizon_secs: horizon.as_secs_f64(),
        inv_per_sec: completed_total as f64 / horizon.as_secs_f64(),
        tenants: tenants_out,
    }
}

/// Platform for the keep-alive A/B: ample quotas (admission never
/// interferes), scarce idle policy under test.
fn keepalive_platform(tenants: &[TenantTraffic], policy: KeepAlivePolicy) -> PlatformConfig {
    PlatformConfig {
        concurrency_limit: 64,
        cluster_containers: 64,
        keep_alive: Some(policy),
        tenants: tenants
            .iter()
            .map(|t| TenantConfig::new(&t.namespace, 8))
            .collect(),
        ..PlatformConfig::default()
    }
}

/// Periodic timer-style tenants whose inter-arrival gaps exceed the fixed
/// TTL — the population where histogram prewarming pays.
fn keepalive_traffic() -> Vec<TenantTraffic> {
    [28u64, 33, 38, 43]
        .iter()
        .enumerate()
        .map(|(i, period)| {
            TenantTraffic::periodic(format!("cron-{i}"), Duration::from_secs(*period)).with_exec(
                ExecMix {
                    min: Duration::from_millis(120),
                    alpha: 2.0,
                    cap: Duration::from_secs(1),
                },
            )
        })
        .collect()
}

/// Platform for the fairness arm: global capacity equals the sum of the
/// two quotas, so the only thing protecting the victim is its quota and
/// the weighted fair queue.
fn fairness_platform() -> PlatformConfig {
    PlatformConfig {
        concurrency_limit: 16,
        cluster_containers: 16,
        tenants: vec![
            TenantConfig::new("victim", 8).queue_depth(64),
            TenantConfig::new("noisy", 8).queue_depth(64),
        ],
        ..PlatformConfig::default()
    }
}

fn victim_traffic() -> TenantTraffic {
    TenantTraffic::poisson("victim", 4.0).with_exec(ExecMix {
        min: Duration::from_millis(200),
        alpha: 1.8,
        cap: Duration::from_secs(2),
    })
}

fn noisy_traffic(horizon: Duration) -> TenantTraffic {
    TenantTraffic::poisson("noisy", 4.0)
        .with_exec(ExecMix {
            min: Duration::from_millis(300),
            alpha: 1.6,
            cap: Duration::from_secs(3),
        })
        .with_burst(BurstWindow {
            start: horizon / 4,
            len: horizon / 2,
            multiplier: 10.0,
        })
}

fn tenant_json(t: &TenantOut) -> String {
    format!(
        "{{\"namespace\":\"{}\",\"submitted\":{},\"completed\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"cold_start_rate\":{:.4},\"warm_pool_secs\":{:.3},\"prewarmed\":{},\"shed\":{},\"throttled\":{}}}",
        t.namespace,
        t.submitted,
        t.completed,
        t.p50_ms,
        t.p99_ms,
        t.cold_rate,
        t.warm_pool_secs,
        t.prewarmed,
        t.shed,
        t.throttled,
    )
}

fn arm_json(a: &ArmOut) -> String {
    let mut s = format!(
        "{{\"name\":\"{}\",\"horizon_secs\":{:.0},\"sustained_inv_per_sec\":{:.3},\"tenants\":[",
        a.name, a.horizon_secs, a.inv_per_sec
    );
    for (i, t) in a.tenants.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&tenant_json(t));
    }
    s.push_str("]}");
    s
}

fn tenant_table(arms: &[&ArmOut]) -> Table {
    let mut table = Table::new(&[
        "Arm", "Tenant", "Done", "p50", "p99", "Cold%", "WarmSec", "Prewarm", "Shed", "429",
    ]);
    for a in arms {
        for t in &a.tenants {
            table.row(&[
                a.name.clone(),
                t.namespace.clone(),
                t.completed.to_string(),
                format!("{:.0}ms", t.p50_ms),
                format!("{:.0}ms", t.p99_ms),
                format!("{:.1}%", t.cold_rate * 100.0),
                format!("{:.0}", t.warm_pool_secs),
                t.prewarmed.to_string(),
                t.shed.to_string(),
                t.throttled.to_string(),
            ]);
        }
    }
    table
}

fn main() {
    let args = BenchArgs::parse();
    let ka_horizon = Duration::from_secs(args.scaled(900, 300) as u64);
    let fair_horizon = Duration::from_secs(args.scaled(300, 120) as u64);

    println!("== Multi-tenant serving: admission control + keep-alive ablation ==");
    println!(
        "   (keep-alive horizon {}s, fairness horizon {}s, seed {})\n",
        ka_horizon.as_secs(),
        fair_horizon.as_secs(),
        args.seed
    );

    // --- Arm 1: keep-alive policy A/B over the same periodic trace. ---
    let ka_traffic = keepalive_traffic();
    let fixed_ttl = Duration::from_secs(20);
    let fixed = replay(
        "fixed-ttl",
        args.seed,
        keepalive_platform(&ka_traffic, KeepAlivePolicy::fixed(fixed_ttl)),
        &ka_traffic,
        ka_horizon,
    );
    let hybrid = replay(
        "hybrid-histogram",
        args.seed,
        keepalive_platform(&ka_traffic, KeepAlivePolicy::hybrid(fixed_ttl)),
        &ka_traffic,
        ka_horizon,
    );

    // --- Arm 2: victim alone, then victim + noisy neighbor at 10×. ---
    let victim_iso = replay(
        "victim-isolated",
        args.seed,
        fairness_platform(),
        &[victim_traffic()],
        fair_horizon,
    );
    let burst_traffic = [victim_traffic(), noisy_traffic(fair_horizon)];
    let burst = replay(
        "noisy-burst",
        args.seed,
        fairness_platform(),
        &burst_traffic,
        fair_horizon,
    );

    // --- Arm 3: bitwise replay of the burst timeline. ---
    let burst_again = replay(
        "noisy-burst",
        args.seed,
        fairness_platform(),
        &burst_traffic,
        fair_horizon,
    );

    println!("{}", tenant_table(&[&fixed, &hybrid, &victim_iso, &burst]));

    let ka_rate = |a: &ArmOut| {
        let cold: f64 = a
            .tenants
            .iter()
            .map(|t| t.cold_rate * t.completed as f64)
            .sum();
        let done: f64 = a.tenants.iter().map(|t| t.completed as f64).sum();
        cold / done.max(1.0)
    };
    let ka_cost = |a: &ArmOut| a.tenants.iter().map(|t| t.warm_pool_secs).sum::<f64>();
    let (fixed_rate, hybrid_rate) = (ka_rate(&fixed), ka_rate(&hybrid));
    let (fixed_cost, hybrid_cost) = (ka_cost(&fixed), ka_cost(&hybrid));
    println!(
        "keep-alive: cold-start rate {:.1}% -> {:.1}%, warm-pool cost {:.0}s -> {:.0}s",
        fixed_rate * 100.0,
        hybrid_rate * 100.0,
        fixed_cost,
        hybrid_cost
    );

    let p99_iso = victim_iso.tenants[0].p99_ms;
    let p99_burst = burst
        .tenants
        .iter()
        .find(|t| t.namespace == "victim")
        .expect("victim tenant in burst arm")
        .p99_ms;
    let noisy_out = burst
        .tenants
        .iter()
        .find(|t| t.namespace == "noisy")
        .expect("noisy tenant in burst arm");
    println!(
        "fairness: victim p99 {p99_iso:.0}ms isolated -> {p99_burst:.0}ms under 10x burst \
         (noisy shed {} / throttled {})\n",
        noisy_out.shed, noisy_out.throttled
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"seed\":{},\"smoke\":{},\"arms\":[",
        args.seed, args.smoke
    );
    for (i, a) in [&fixed, &hybrid, &victim_iso, &burst].iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&arm_json(a));
    }
    let _ = write!(
        json,
        "],\"cold_rate_fixed\":{:.4},\"cold_rate_hybrid\":{:.4},\"warm_cost_fixed\":{:.1},\"warm_cost_hybrid\":{:.1},\"victim_p99_isolated_ms\":{:.3},\"victim_p99_burst_ms\":{:.3},\"replay_bitwise\":{}}}",
        fixed_rate,
        hybrid_rate,
        fixed_cost,
        hybrid_cost,
        p99_iso,
        p99_burst,
        burst == burst_again,
    );
    json.push('\n');
    std::fs::write("BENCH_serving.json", &json).expect("writing BENCH_serving.json");
    println!("wrote BENCH_serving.json");

    // Regression gates, at any scale.
    assert_eq!(
        burst, burst_again,
        "identical seeds must replay the burst timeline bitwise"
    );
    assert!(
        hybrid_rate < fixed_rate,
        "gate a: hybrid cold-start rate ({:.3}) must beat fixed-TTL ({:.3})",
        hybrid_rate,
        fixed_rate
    );
    assert!(
        hybrid_cost <= fixed_cost * 1.05,
        "gate a: hybrid warm-pool cost ({hybrid_cost:.1}s) must not exceed \
         1.05x fixed-TTL ({fixed_cost:.1}s)"
    );
    assert!(
        p99_burst <= p99_iso * 2.0,
        "gate b: victim p99 under burst ({p99_burst:.1}ms) must stay within \
         2x its isolated baseline ({p99_iso:.1}ms)"
    );
    assert!(
        noisy_out.shed + noisy_out.throttled > 0,
        "gate b: the 10x burst must actually trip admission control"
    );
}
