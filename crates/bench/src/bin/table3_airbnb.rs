//! Table 3 — the real MapReduce job: Airbnb tone analysis (§6.4).
//!
//! Generates the synthetic 33-city / 1.9 GB (logical) review dataset, runs
//! the sequential notebook baseline, then sweeps `map_reduce` chunk sizes
//! 64→2 MB with `reducer_one_per_object` (one reducer renders each city's
//! tone map) and massive function spawning, printing concurrency and
//! speedup next to the paper's Table 3.
//!
//! Run: `cargo run --release -p rustwren-bench --bin table3_airbnb`

use rustwren_bench::{fmt_secs, BenchArgs, Table};
use rustwren_core::{DataSource, MapReduceOpts, SimCloud, SpawnStrategy, Value};
use rustwren_faas::PlatformConfig;
use rustwren_sim::NetworkProfile;
use rustwren_workloads::{airbnb, baseline, tone};

const MB: u64 = 1 << 20;

/// Paper's Table 3: (chunk MB, executors, exec seconds, speedup).
const PAPER: [(u64, u64, f64, f64); 6] = [
    (64, 47, 471.0, 10.95),
    (32, 72, 297.0, 17.37),
    (16, 129, 181.0, 28.51),
    (8, 242, 112.0, 46.07),
    (4, 471, 63.0, 81.90),
    (2, 923, 38.0, 135.79),
];

fn main() {
    let args = BenchArgs::parse();
    let chunks: Vec<u64> = if args.smoke {
        vec![64, 16]
    } else {
        PAPER.iter().map(|p| p.0).collect()
    };
    let scale = if args.smoke { 1 << 14 } else { 512 };

    println!("== Table 3: Airbnb tone-analysis MapReduce ==");
    println!(
        "   (33 cities, {:.2} GB logical, {} comments in the paper)\n",
        airbnb::AirbnbDataset::total_logical_size() as f64 / 1e9,
        airbnb::TOTAL_COMMENTS
    );

    // Sequential baseline (Table 3, row 1).
    let seq_cloud = make_cloud(args.seed, 1_100);
    let dataset = airbnb::generate(seq_cloud.store(), "reviews", scale, args.seed)
        .expect("stage reviews dataset");
    let seq_cloud2 = seq_cloud.clone();
    let dataset2 = dataset.clone();
    let (summaries, seq_elapsed) = seq_cloud
        .run(move || baseline::sequential_tone_analysis(&seq_cloud2, &dataset2).expect("baseline"));
    let seq_secs = seq_elapsed.as_secs_f64();
    let comments: u64 = summaries.iter().map(|s| s.comments).sum();
    println!(
        "sequential baseline: {} (paper: 5160s = 1h26m), {} sampled comments analyzed\n",
        fmt_secs(seq_secs),
        comments
    );

    let mut table = Table::new(&[
        "Chunk",
        "Executors",
        "Paper exec.",
        "Measured exec.",
        "Paper speedup",
        "Measured speedup",
    ]);
    table.row(&[
        "sequential".into(),
        "0".into(),
        "5160s".into(),
        fmt_secs(seq_secs),
        "1x (base)".into(),
        "1x (base)".into(),
    ]);

    for &chunk in &chunks {
        let paper = PAPER.iter().find(|p| p.0 == chunk).expect("known chunk");
        let (executors, secs) = run_chunk(args.seed, scale, chunk * MB);
        table.row(&[
            format!("{chunk}MB"),
            format!("{executors} (paper {})", paper.1),
            fmt_secs(paper.2),
            fmt_secs(secs),
            format!("{:.2}x", paper.3),
            format!("{:.2}x", seq_secs / secs),
        ]);
    }
    println!("{table}");
    println!("(executors = map-phase function executors; one reducer per city renders its map)");
}

fn make_cloud(seed: u64, concurrency: usize) -> SimCloud {
    let platform = PlatformConfig {
        concurrency_limit: concurrency,
        cluster_containers: concurrency + 200,
        ..PlatformConfig::default()
    };
    SimCloud::builder()
        .seed(seed)
        .platform(platform)
        .client_network(NetworkProfile::wan())
        .build()
}

fn run_chunk(seed: u64, scale: u64, chunk_bytes: u64) -> (usize, f64) {
    let cloud = make_cloud(seed, 1_100);
    let dataset =
        airbnb::generate(cloud.store(), "reviews", scale, seed).expect("stage reviews dataset");
    tone::register(&cloud);
    let cloud2 = cloud.clone();
    cloud.run(move || {
        let t0 = rustwren_sim::now();
        let exec = cloud2
            .executor()
            .spawn(SpawnStrategy::massive())
            .build()
            .expect("executor");
        exec.map_reduce(
            tone::TONE_MAP_FN,
            DataSource::bucket(&dataset.bucket),
            tone::TONE_REDUCE_FN,
            MapReduceOpts {
                chunk_size: Some(chunk_bytes),
                reducer_one_per_object: true,
            },
        )
        .expect("map_reduce");
        let results = exec.get_result().expect("results");
        assert_eq!(results.len(), 33, "one tone map per city");
        for city in &results {
            let svg = city.get("svg").and_then(Value::as_str).expect("svg result");
            assert!(svg.starts_with("<svg"), "reducer rendered a map");
        }
        let secs = (rustwren_sim::now() - t0).as_secs_f64();
        // Map executors = agent activations minus the 33 reducers, counted
        // from the partitioner directly:
        let executors = cloud2
            .functions()
            .records()
            .iter()
            .filter(|r| r.action.starts_with("rustwren-agent@"))
            .count()
            - 33;
        (executors, secs)
    })
}
