//! Smoke tests: every experiment binary runs end-to-end in `--smoke` mode
//! and prints the expected report skeleton. This keeps the harness itself
//! under test.

use std::process::Command;

fn run_smoke(bin: &str) -> String {
    let output = Command::new(bin)
        .arg("--smoke")
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} --smoke failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn sec51_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_sec51_invocation"));
    assert!(out.contains("Massive Function Spawning"));
    assert!(out.contains("LAN client, direct"));
    assert!(out.contains("invoker groups"));
}

#[test]
fn fig2_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_fig2_spawning"));
    assert!(out.contains("Fig 2"));
    assert!(out.contains("Massive function spawning"));
    assert!(out.contains('#'), "concurrency chart missing");
}

#[test]
fn fig3_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_fig3_elasticity"));
    assert!(out.contains("Fig 3"));
    assert!(out.contains("yes"), "full concurrency not reached:\n{out}");
    assert!(
        !out.contains("NO ("),
        "some workload failed to reach target:\n{out}"
    );
}

#[test]
fn fig4_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_fig4_mergesort"));
    assert!(out.contains("Fig 4"));
    assert!(out.contains("d=2"));
    assert!(out.contains("best depth"));
}

#[test]
fn table3_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_table3_airbnb"));
    assert!(out.contains("Table 3"));
    assert!(out.contains("sequential baseline"));
    assert!(out.contains("paper 47"), "64MB row missing:\n{out}");
}

#[test]
fn fig5_smoke() {
    let out = run_smoke(env!("CARGO_BIN_EXE_fig5_tonemap"));
    assert!(out.contains("Fig 5"));
    assert!(out.contains("new-york"));
    assert!(std::path::Path::new("target/fig5/new-york.svg").exists());
}

#[test]
fn demo_runs_every_scenario() {
    for scenario in ["map", "shuffle", "pi", "sort"] {
        let output = Command::new(env!("CARGO_BIN_EXE_demo"))
            .args([scenario, "--tasks", "12", "--network", "lan"])
            .output()
            .expect("spawn demo");
        assert!(
            output.status.success(),
            "demo {scenario} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let out = String::from_utf8_lossy(&output.stdout);
        assert!(out.contains("virtual time:"), "demo {scenario}:\n{out}");
    }
}

#[test]
fn demo_rejects_bad_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_demo"))
        .args(["map", "--bogus"])
        .output()
        .expect("spawn demo");
    assert!(!output.status.success());
}
