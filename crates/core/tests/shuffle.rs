//! Tests of the storage-based shuffle stage (`map_shuffle_reduce`).

use bytes::Bytes;
use rustwren_core::{DataSource, ShuffleOpts, SimCloud, TaskCtx, Value};
use rustwren_sim::NetworkProfile;
use std::collections::BTreeMap;

fn test_cloud() -> SimCloud {
    SimCloud::builder()
        .seed(21)
        .client_network(NetworkProfile::lan())
        .build()
}

/// Map: tokenize a text partition into (word, 1) pairs.
fn register_wordcount(cloud: &SimCloud) {
    cloud.register_fn("split-words", |_ctx: &TaskCtx, v: Value| {
        let data = v.get("data").and_then(Value::as_bytes).ok_or("no data")?;
        let text = std::str::from_utf8(data).map_err(|e| e.to_string())?;
        Ok(Value::List(
            text.split_whitespace()
                .map(|w| Value::map().with("k", w).with("v", 1i64))
                .collect(),
        ))
    });
    cloud.register_fn("sum-groups", |_ctx: &TaskCtx, v: Value| {
        let groups = v.get("groups").and_then(Value::as_map).ok_or("no groups")?;
        Ok(Value::Map(
            groups
                .iter()
                .map(|(word, ones)| {
                    let count = ones.as_list().map_or(0, |l| l.len()) as i64;
                    (word.clone(), Value::Int(count))
                })
                .collect(),
        ))
    });
}

fn stage_docs(cloud: &SimCloud) {
    let store = cloud.store();
    store.create_bucket("docs").unwrap();
    store
        .put(
            "docs",
            "a.txt",
            Bytes::from_static(b"apple banana apple\ncherry banana apple\n"),
        )
        .unwrap();
    store
        .put(
            "docs",
            "b.txt",
            Bytes::from_static(b"banana date\napple date\n"),
        )
        .unwrap();
}

fn merged_counts(results: &[Value]) -> BTreeMap<String, i64> {
    let mut all = BTreeMap::new();
    for r in results {
        for (k, v) in r.as_map().expect("reducer returns a map") {
            let prev = all.insert(k.clone(), v.as_i64().expect("count"));
            assert!(prev.is_none(), "word {k} appeared in two reducers");
        }
    }
    all
}

#[test]
fn shuffle_wordcount_partitions_keys_across_reducers() {
    let cloud = test_cloud();
    register_wordcount(&cloud);
    stage_docs(&cloud);
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_shuffle_reduce(
            "split-words",
            DataSource::bucket("docs"),
            "sum-groups",
            ShuffleOpts {
                reducers: 3,
                chunk_size: Some(16),
                ..ShuffleOpts::default()
            },
        )?;
        exec.get_result()
    });
    let results = results.unwrap();
    assert_eq!(results.len(), 3, "one result per reducer");
    let counts = merged_counts(&results);
    let expected: BTreeMap<String, i64> = [("apple", 4), ("banana", 3), ("cherry", 1), ("date", 2)]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    assert_eq!(counts, expected);
}

#[test]
fn shuffle_over_values_source() {
    let cloud = test_cloud();
    cloud.register_fn("emit-mod", |_ctx: &TaskCtx, v: Value| {
        let n = v.as_i64().ok_or("int")?;
        Ok(Value::List(vec![Value::map()
            .with("k", format!("mod{}", n % 3))
            .with("v", n)]))
    });
    cloud.register_fn("sum-values", |_ctx: &TaskCtx, v: Value| {
        let groups = v.get("groups").and_then(Value::as_map).ok_or("no groups")?;
        Ok(Value::Map(
            groups
                .iter()
                .map(|(k, vals)| {
                    let sum: i64 = vals
                        .as_list()
                        .map_or(0, |l| l.iter().filter_map(Value::as_i64).sum());
                    (k.clone(), Value::Int(sum))
                })
                .collect(),
        ))
    });
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_shuffle_reduce(
            "emit-mod",
            DataSource::Values((0..30).map(Value::from).collect()),
            "sum-values",
            ShuffleOpts {
                reducers: 2,
                chunk_size: None,
                ..ShuffleOpts::default()
            },
        )?;
        exec.get_result()
    });
    let counts = merged_counts(&results.unwrap());
    // sum of 0..30 split by n % 3: mod0: 0+3+..+27 = 135, mod1: 145, mod2: 155
    assert_eq!(counts["mod0"], 135);
    assert_eq!(counts["mod1"], 145);
    assert_eq!(counts["mod2"], 155);
}

#[test]
fn shuffle_map_must_return_pairs() {
    let cloud = test_cloud();
    cloud.register_fn("bad-map", |_ctx: &TaskCtx, _v: Value| Ok(Value::Int(1)));
    cloud.register_fn("any-reduce", |_ctx: &TaskCtx, v: Value| Ok(v));
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map_shuffle_reduce(
            "bad-map",
            DataSource::Values(vec![Value::Null]),
            "any-reduce",
            ShuffleOpts {
                reducers: 2,
                chunk_size: None,
                ..ShuffleOpts::default()
            },
        )
        .unwrap();
        let err = exec.get_result().unwrap_err();
        assert!(
            err.to_string().contains("pairs") || err.to_string().contains("failed"),
            "unexpected error: {err}"
        );
    });
}

#[test]
fn single_reducer_shuffle_sees_every_key() {
    let cloud = test_cloud();
    register_wordcount(&cloud);
    stage_docs(&cloud);
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_shuffle_reduce(
            "split-words",
            DataSource::bucket("docs"),
            "sum-groups",
            ShuffleOpts {
                reducers: 1,
                chunk_size: None,
                ..ShuffleOpts::default()
            },
        )?;
        exec.get_result()
    });
    let results = results.unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].as_map().unwrap().len(),
        4,
        "all four words in one reducer"
    );
}

#[test]
fn shuffle_is_deterministic() {
    let run = || {
        let cloud = test_cloud();
        register_wordcount(&cloud);
        stage_docs(&cloud);
        cloud.run(|| {
            let exec = cloud.executor().build().unwrap();
            exec.map_shuffle_reduce(
                "split-words",
                DataSource::bucket("docs"),
                "sum-groups",
                ShuffleOpts {
                    reducers: 3,
                    chunk_size: Some(16),
                    ..ShuffleOpts::default()
                },
            )
            .unwrap();
            let r = exec.get_result().unwrap();
            (r, rustwren_sim::now().as_nanos())
        })
    };
    assert_eq!(run(), run());
}
