//! End-to-end tests of the executor API over the simulated cloud.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rustwren_core::{
    DataSource, GetResultOpts, MapReduceOpts, PywrenError, SimCloud, SpawnStrategy, TaskCtx, Value,
    WaitPolicy,
};
use rustwren_sim::NetworkProfile;

fn test_cloud() -> SimCloud {
    SimCloud::builder()
        .seed(11)
        .client_network(NetworkProfile::lan())
        .build()
}

fn register_add7(cloud: &SimCloud) {
    cloud.register_fn("add7", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(v.as_i64().ok_or("expected int")? + 7))
    });
}

#[test]
fn call_async_roundtrip() {
    let cloud = test_cloud();
    register_add7(&cloud);
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        let fut = exec.call_async("add7", Value::Int(35))?;
        assert_eq!(fut.task(), 0);
        exec.get_result()
    });
    assert_eq!(results.unwrap(), vec![Value::Int(42)]);
}

#[test]
fn map_preserves_input_order() {
    let cloud = test_cloud();
    register_add7(&cloud);
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map("add7", (0..50).map(Value::from))?;
        exec.get_result()
    });
    let expected: Vec<Value> = (7..57).map(Value::from).collect();
    assert_eq!(results.unwrap(), expected);
}

#[test]
fn unknown_function_fails_client_side() {
    let cloud = test_cloud();
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        let err = exec.map("ghost", [Value::Int(1)]).unwrap_err();
        assert!(matches!(err, PywrenError::UnknownFunction(_)));
    });
}

#[test]
fn task_error_is_reported_with_label() {
    let cloud = test_cloud();
    cloud.register_fn("half", |_ctx: &TaskCtx, v: Value| {
        let x = v.as_i64().ok_or("expected int")?;
        if x % 2 == 1 {
            return Err(format!("{x} is odd"));
        }
        Ok(Value::Int(x / 2))
    });
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("half", [Value::Int(4), Value::Int(3)]).unwrap();
        let err = exec.get_result().unwrap_err();
        match err {
            PywrenError::Task { task, message } => {
                assert!(task.contains("t00001"), "wrong task: {task}");
                assert_eq!(message, "3 is odd");
            }
            other => panic!("expected Task error, got {other:?}"),
        }
    });
}

#[test]
fn panicking_function_is_contained_as_task_error() {
    let cloud = test_cloud();
    cloud.register_fn(
        "boom",
        |_ctx: &TaskCtx, _v: Value| -> Result<Value, String> { panic!("kaboom") },
    );
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("boom", [Value::Null]).unwrap();
        let err = exec.get_result().unwrap_err();
        assert!(matches!(
            err,
            PywrenError::Task { message, .. } if message.contains("kaboom")
        ));
    });
}

#[test]
fn wait_always_is_nonblocking() {
    let cloud = test_cloud();
    cloud.register_fn("slow", |ctx: &TaskCtx, v: Value| {
        ctx.charge(Duration::from_secs(30));
        Ok(v)
    });
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("slow", (0..4).map(Value::from)).unwrap();
        let t0 = rustwren_sim::now();
        let (done, pending) = exec.wait(WaitPolicy::Always).unwrap();
        // One LIST round trip only, nowhere near the 30s task time.
        assert!((rustwren_sim::now() - t0).as_secs_f64() < 5.0);
        assert!(done.is_empty());
        assert_eq!(pending.len(), 4);
    });
}

#[test]
fn wait_any_unblocks_on_first_completion() {
    let cloud = test_cloud();
    cloud.register_fn("var", |ctx: &TaskCtx, v: Value| {
        let secs = v.as_i64().ok_or("int")? as u64;
        ctx.charge(Duration::from_secs(secs));
        Ok(v)
    });
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("var", [Value::Int(5), Value::Int(300)]).unwrap();
        let (done, pending) = exec.wait(WaitPolicy::AnyCompleted).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(pending.len(), 1);
        let now = rustwren_sim::now().as_secs_f64();
        assert!(now < 100.0, "waited too long: {now}");
        // Drain so nothing is left half-tracked.
        let results = exec.get_result().unwrap();
        assert_eq!(results.len(), 2);
    });
}

#[test]
fn wait_all_returns_everything_done() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("add7", (0..8).map(Value::from)).unwrap();
        let (done, pending) = exec.wait(WaitPolicy::AllCompleted).unwrap();
        assert_eq!(done.len(), 8);
        assert!(pending.is_empty());
    });
}

#[test]
fn get_result_timeout_fires() {
    let cloud = test_cloud();
    cloud.register_fn("forever", |ctx: &TaskCtx, v: Value| {
        ctx.charge(Duration::from_secs(500));
        Ok(v)
    });
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("forever", [Value::Null]).unwrap();
        let err = exec
            .get_result_with(GetResultOpts {
                timeout: Some(Duration::from_secs(10)),
                progress: None,
            })
            .unwrap_err();
        assert_eq!(
            err,
            PywrenError::Timeout {
                done: 0,
                pending: 1
            }
        );
    });
}

#[test]
fn progress_callback_reports_completion() {
    let cloud = test_cloud();
    register_add7(&cloud);
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let cloud2 = cloud.clone();
    cloud.run(move || {
        let exec = cloud2.executor().build().unwrap();
        exec.map("add7", (0..5).map(Value::from)).unwrap();
        let results = exec
            .get_result_with(GetResultOpts {
                timeout: None,
                progress: Some(Arc::new(move |done, total| {
                    assert!(done <= total);
                    assert_eq!(total, 5);
                    calls2.fetch_add(1, Ordering::Relaxed);
                })),
            })
            .unwrap();
        assert_eq!(results.len(), 5);
    });
    assert!(calls.load(Ordering::Relaxed) >= 1);
}

#[test]
fn map_reduce_over_bucket_with_single_reducer() {
    let cloud = test_cloud();
    // Map: count lines in the partition; reduce: sum the counts.
    cloud.register_fn("count_lines", |_ctx: &TaskCtx, v: Value| {
        let data = v.get("data").and_then(Value::as_bytes).ok_or("no data")?;
        Ok(Value::Int(
            data.iter().filter(|&&b| b == b'\n').count() as i64
        ))
    });
    cloud.register_fn("sum", |_ctx: &TaskCtx, v: Value| {
        let results = v.req_list("results")?;
        Ok(Value::Int(results.iter().filter_map(Value::as_i64).sum()))
    });

    let store = cloud.store().clone();
    store.create_bucket("reviews").unwrap();
    store
        .put("reviews", "a.txt", Bytes::from_static(b"one\ntwo\nthree\n"))
        .unwrap();
    store
        .put("reviews", "b.txt", Bytes::from_static(b"four\nfive\n"))
        .unwrap();

    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_reduce(
            "count_lines",
            DataSource::bucket("reviews"),
            "sum",
            MapReduceOpts {
                chunk_size: Some(6),
                reducer_one_per_object: false,
            },
        )?;
        exec.get_result()
    });
    assert_eq!(results.unwrap(), vec![Value::Int(5)]);
}

#[test]
fn map_reduce_reducer_one_per_object() {
    let cloud = test_cloud();
    cloud.register_fn("count_lines", |_ctx: &TaskCtx, v: Value| {
        let data = v.get("data").and_then(Value::as_bytes).ok_or("no data")?;
        Ok(Value::Int(
            data.iter().filter(|&&b| b == b'\n').count() as i64
        ))
    });
    cloud.register_fn("sum_city", |_ctx: &TaskCtx, v: Value| {
        let group = v.req_str("group")?.to_owned();
        let total: i64 = v
            .req_list("results")?
            .iter()
            .filter_map(Value::as_i64)
            .sum();
        Ok(Value::map().with("city", group).with("lines", total))
    });

    let store = cloud.store().clone();
    store.create_bucket("reviews").unwrap();
    store
        .put("reviews", "ams.txt", Bytes::from_static(b"a\nb\n"))
        .unwrap();
    store
        .put("reviews", "nyc.txt", Bytes::from_static(b"c\nd\ne\n"))
        .unwrap();

    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_reduce(
            "count_lines",
            DataSource::bucket("reviews"),
            "sum_city",
            MapReduceOpts {
                chunk_size: Some(4),
                reducer_one_per_object: true,
            },
        )?;
        exec.get_result()
    });
    let results = results.unwrap();
    assert_eq!(results.len(), 2, "one reducer per city object");
    let lines_for = |city: &str| {
        results
            .iter()
            .find(|r| r.get("city").and_then(Value::as_str) == Some(city))
            .and_then(|r| r.get("lines").and_then(Value::as_i64))
    };
    assert_eq!(lines_for("ams.txt"), Some(2));
    assert_eq!(lines_for("nyc.txt"), Some(3));
}

#[test]
fn map_reduce_over_values_source() {
    let cloud = test_cloud();
    cloud.register_fn("square", |_ctx: &TaskCtx, v: Value| {
        let x = v.as_i64().ok_or("int")?;
        Ok(Value::Int(x * x))
    });
    cloud.register_fn("sum", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(
            v.req_list("results")?
                .iter()
                .filter_map(Value::as_i64)
                .sum(),
        ))
    });
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.map_reduce(
            "square",
            DataSource::Values((1..=4).map(Value::from).collect()),
            "sum",
            MapReduceOpts::default(),
        )?;
        exec.get_result()
    });
    assert_eq!(results.unwrap(), vec![Value::Int(30)]);
}

#[test]
fn composition_nested_map_resolves_transparently() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.register_fn("foo", |ctx: &TaskCtx, _v: Value| {
        // §4.4's example: a function that spawns a parallel sub-job and
        // returns its futures.
        let exec = ctx.executor().map_err(|e| e.to_string())?;
        let futs = exec
            .map("add7", (0..10).map(Value::from))
            .map_err(|e| e.to_string())?;
        Ok(ctx.futures_value(&futs))
    });
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.call_async("foo", Value::Null)?;
        exec.get_result()
    });
    let results = results.unwrap();
    assert_eq!(results.len(), 1);
    let inner = results[0].as_list().expect("sub-results list");
    let got: Vec<i64> = inner.iter().filter_map(Value::as_i64).collect();
    assert_eq!(got, (7..17).collect::<Vec<_>>());
}

#[test]
fn sequence_composition_chains_functions() {
    let cloud = test_cloud();
    cloud.register_fn("add7", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(v.as_i64().ok_or("int")? + 7))
    });
    cloud.register_fn("then_double", |ctx: &TaskCtx, v: Value| {
        // f2 ∘ f1: invoke add7 remotely, then double its result locally.
        let exec = ctx.executor().map_err(|e| e.to_string())?;
        let fut = exec.call_async("add7", v).map_err(|e| e.to_string())?;
        let results = exec
            .resolve(&[fut], &GetResultOpts::default())
            .map_err(|e| e.to_string())?;
        let x = results[0].as_i64().ok_or("int result")?;
        Ok(Value::Int(x * 2))
    });
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        exec.call_async("then_double", Value::Int(3))?;
        exec.get_result()
    });
    assert_eq!(results.unwrap(), vec![Value::Int(20)]);
}

#[test]
fn massive_spawning_strategy_produces_same_results() {
    let cloud = test_cloud();
    register_add7(&cloud);
    let results = cloud.run(|| {
        let exec = cloud.executor().spawn(SpawnStrategy::massive()).build()?;
        exec.map("add7", (0..250).map(Value::from))?;
        exec.get_result()
    });
    let expected: Vec<Value> = (7..257).map(Value::from).collect();
    assert_eq!(results.unwrap(), expected);
}

#[test]
fn massive_spawning_is_faster_from_wan() {
    let run = |strategy: SpawnStrategy| {
        let cloud = SimCloud::builder()
            .seed(5)
            .client_network(NetworkProfile::wan())
            .build();
        cloud.register_fn("task", |ctx: &TaskCtx, v: Value| {
            ctx.charge(Duration::from_secs(50));
            Ok(v)
        });
        cloud.run(|| {
            let t0 = rustwren_sim::now();
            let exec = cloud.executor().spawn(strategy).build().unwrap();
            exec.map("task", (0..400).map(Value::from)).unwrap();
            exec.get_result().unwrap();
            (rustwren_sim::now() - t0).as_secs_f64()
        })
    };
    let direct = run(SpawnStrategy::Direct { client_threads: 5 });
    let massive = run(SpawnStrategy::massive());
    assert!(
        massive < direct,
        "massive spawning ({massive:.1}s) should beat direct WAN spawning ({direct:.1}s)"
    );
}

#[test]
fn custom_runtime_requires_registry_image() {
    let cloud = test_cloud();
    cloud.run(|| {
        let err = cloud.executor().runtime("ghost:1").build().unwrap_err();
        assert!(matches!(err, PywrenError::UnknownFunction(_)));

        cloud.functions().registry().push(
            rustwren_faas::RuntimeImage::new("alice/matplotlib:1", 420 << 20)
                .with_package("matplotlib"),
        );
        assert!(cloud
            .executor()
            .runtime("alice/matplotlib:1")
            .build()
            .is_ok());
    });
}

#[test]
fn two_executors_are_isolated() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let e1 = cloud.executor().build().unwrap();
        let e2 = cloud.executor().build().unwrap();
        assert_ne!(e1.exec_id(), e2.exec_id());
        e1.map("add7", [Value::Int(1)]).unwrap();
        e2.map("add7", [Value::Int(100)]).unwrap();
        assert_eq!(e1.get_result().unwrap(), vec![Value::Int(8)]);
        assert_eq!(e2.get_result().unwrap(), vec![Value::Int(107)]);
    });
}

#[test]
fn get_result_with_nothing_pending_is_empty() {
    let cloud = test_cloud();
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        assert_eq!(exec.get_result().unwrap(), Vec::<Value>::new());
        let (done, pending) = exec.wait(WaitPolicy::AllCompleted).unwrap();
        assert!(done.is_empty() && pending.is_empty());
    });
}

#[test]
fn results_survive_for_late_resolution() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        let futs = exec.map("add7", [Value::Int(1)]).unwrap();
        let _ = exec.get_result().unwrap();
        // Futures can be re-resolved explicitly even after get_result.
        let again = exec.resolve(&futs, &GetResultOpts::default()).unwrap();
        assert_eq!(again, vec![Value::Int(8)]);
    });
}

#[test]
fn call_sequence_runs_stages_in_order() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.register_fn("triple", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(v.as_i64().ok_or("int")? * 3))
    });
    cloud.register_fn("negate", |_ctx: &TaskCtx, v: Value| {
        Ok(Value::Int(-v.as_i64().ok_or("int")?))
    });
    let results = cloud.run(|| {
        let exec = cloud.executor().build()?;
        // negate(triple(add7(1))) = -(3 * 8) = -24
        exec.call_sequence(&["add7", "triple", "negate"], Value::Int(1))?;
        exec.get_result()
    });
    assert_eq!(results.unwrap(), vec![Value::Int(-24)]);
}

#[test]
fn sequence_stage_error_propagates_to_client() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.register_fn(
        "explode",
        |_ctx: &TaskCtx, _v: Value| -> Result<Value, String> { Err("stage two failed".into()) },
    );
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.call_sequence(&["add7", "explode", "add7"], Value::Int(1))
            .unwrap();
        let err = exec.get_result().unwrap_err();
        assert!(
            matches!(&err, PywrenError::Task { message, .. } if message.contains("stage two failed")),
            "unexpected error: {err:?}"
        );
    });
}

#[test]
fn auto_strategy_picks_by_job_size() {
    use rustwren_core::SpawnStrategy;
    assert_eq!(
        SpawnStrategy::Auto { threshold: 100 }.resolve_for(99),
        SpawnStrategy::default()
    );
    assert_eq!(
        SpawnStrategy::Auto { threshold: 100 }.resolve_for(100),
        SpawnStrategy::massive()
    );

    // End-to-end: a big Auto job actually goes through the remote invoker.
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud
            .executor()
            .spawn(SpawnStrategy::Auto { threshold: 50 })
            .build()
            .unwrap();
        exec.map("add7", (0..120).map(Value::from)).unwrap();
        let results = exec.get_result().unwrap();
        assert_eq!(results.len(), 120);
    });
    let invoker_runs = cloud
        .functions()
        .activations_for(rustwren_core::invoker::INVOKER_ACTION)
        .len();
    assert!(
        invoker_runs >= 2,
        "expected invoker groups, saw {invoker_runs}"
    );
}

#[test]
fn task_timings_expose_execution_metadata() {
    let cloud = test_cloud();
    cloud.register_fn("work", |ctx: &TaskCtx, v: Value| {
        let secs = v.as_i64().ok_or("int")? as u64;
        ctx.charge(Duration::from_secs(secs));
        Ok(v)
    });
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        let futs = exec.map("work", [Value::Int(2), Value::Int(10)]).unwrap();
        exec.get_result().unwrap();
        let timings = exec.task_timings(&futs).unwrap();
        assert_eq!(timings.len(), 2);
        assert!(timings.iter().all(|t| t.succeeded));
        assert!(timings[0].duration_secs() >= 1.5);
        assert!(
            timings[1].duration_secs() > timings[0].duration_secs(),
            "10s task must run longer than 2s task"
        );
    });
}

#[test]
fn invoker_groups_handle_remainders() {
    // 250 tasks with groups of 100 → 3 invoker functions (100, 100, 50).
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud
            .executor()
            .spawn(SpawnStrategy::RemoteInvoker {
                group_size: 100,
                invoker_threads: 2,
            })
            .build()
            .unwrap();
        exec.map("add7", (0..250).map(Value::from)).unwrap();
        let results = exec.get_result().unwrap();
        assert_eq!(results.len(), 250);
    });
    let invokers = cloud
        .functions()
        .activations_for(rustwren_core::invoker::INVOKER_ACTION);
    assert_eq!(invokers.len(), 3);
    assert!(invokers.iter().all(|r| r.is_success()));
}

#[test]
fn custom_storage_bucket_is_respected() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud
            .executor()
            .storage_bucket("my-own-bucket")
            .build()
            .unwrap();
        exec.map("add7", [Value::Int(1)]).unwrap();
        exec.get_result().unwrap();
    });
    let staged = cloud.store().list("my-own-bucket", "jobs/").unwrap();
    assert!(!staged.is_empty(), "artifacts landed in the custom bucket");
}

#[test]
fn longer_poll_interval_costs_latency_but_same_results() {
    let run = |poll_ms: u64| {
        let cloud = test_cloud();
        register_add7(&cloud);
        let cloud2 = cloud.clone();
        cloud.run(move || {
            let exec = cloud2
                .executor()
                .poll_interval(Duration::from_millis(poll_ms))
                .build()
                .unwrap();
            exec.map("add7", [Value::Int(1)]).unwrap();
            let r = exec.get_result().unwrap();
            (r, rustwren_sim::now().as_secs_f64())
        })
    };
    let (r_fast, t_fast) = run(100);
    let (r_slow, t_slow) = run(5_000);
    assert_eq!(r_fast, r_slow);
    assert!(
        t_slow > t_fast + 1.0,
        "coarser polling must add completion latency: {t_fast} vs {t_slow}"
    );
}

#[test]
fn executor_network_override_changes_costs() {
    // Same cloud/WAN default, but an executor pinned to the datacenter
    // network finishes the same job much faster.
    let run = |use_dc: bool| {
        let cloud = SimCloud::builder()
            .seed(44)
            .client_network(NetworkProfile::wan())
            .build();
        register_add7(&cloud);
        let cloud2 = cloud.clone();
        cloud.run(move || {
            let mut builder = cloud2.executor();
            if use_dc {
                builder = builder.network(NetworkProfile::datacenter());
            }
            let exec = builder.build().unwrap();
            exec.map("add7", (0..20).map(Value::from)).unwrap();
            exec.get_result().unwrap();
            rustwren_sim::now().as_secs_f64()
        })
    };
    let wan = run(false);
    let dc = run(true);
    assert!(
        dc < wan,
        "datacenter executor ({dc}) should beat WAN ({wan})"
    );
}

#[test]
fn clean_removes_all_staged_objects() {
    let cloud = test_cloud();
    register_add7(&cloud);
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map("add7", (0..5).map(Value::from)).unwrap();
        exec.get_result().unwrap();
        let prefix = format!("jobs/{}/", exec.exec_id());
        assert!(!cloud
            .store()
            .list("rustwren-runtime", &prefix)
            .unwrap()
            .is_empty());

        let removed = exec.clean().unwrap();
        // Inline inputs (the default data path) never reach COS: only the
        // func blob plus each task's status and result are staged.
        assert_eq!(removed, 1 + 5, "blob + statuses (results ride inside)");
        assert!(cloud
            .store()
            .list("rustwren-runtime", &prefix)
            .unwrap()
            .is_empty());

        // The legacy staged data path uploads an input object per task too.
        let staged = cloud
            .executor()
            .data_path(rustwren_core::DataPathConfig::staged())
            .build()
            .unwrap();
        staged.map("add7", (0..5).map(Value::from)).unwrap();
        staged.get_result().unwrap();
        let removed = staged.clean().unwrap();
        assert_eq!(removed, 1 + 5 * 3, "blob + inputs + statuses + results");
    });
}
