//! Property tests for the wire codec and the partitioner.

use bytes::Bytes;
use proptest::prelude::*;
use rustwren_core::partition::{discover, partition_objects, read_aligned, DataSource, ObjectRef};
use rustwren_core::wire::Value;
use rustwren_sim::{Kernel, NetworkProfile};
use rustwren_store::{CosClient, ObjectStore};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Use finite floats: NaN breaks PartialEq-based roundtrip checks.
        (-1e300f64..1e300).prop_map(Value::Float),
        "[a-zA-Z0-9 _éü]{0,24}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for arbitrary values.
    #[test]
    fn codec_roundtrips(v in value_strategy()) {
        let encoded = v.encode();
        prop_assert_eq!(Value::decode(&encoded).expect("well-formed"), v);
    }

    /// The decoder never panics on arbitrary input bytes.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Value::decode(&bytes);
    }

    /// Decoding a truncated valid encoding always errors (never mis-parses).
    #[test]
    fn truncations_error(v in value_strategy(), cut_frac in 0.0f64..1.0) {
        let encoded = v.encode();
        if encoded.len() > 1 {
            let cut = 1 + ((encoded.len() - 1) as f64 * cut_frac) as usize;
            if cut < encoded.len() {
                prop_assert!(Value::decode(&encoded[..cut]).is_err());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitions cover each object exactly once, in order.
    #[test]
    fn partitions_tile_objects(
        sizes in prop::collection::vec(0u64..5_000, 1..6),
        chunk in prop::option::of(1u64..1_500),
    ) {
        let kernel = Kernel::new();
        let store = ObjectStore::new(&kernel);
        store.create_bucket("b").expect("fresh bucket");
        for (i, &size) in sizes.iter().enumerate() {
            store
                .put("b", &format!("obj{i}"), Bytes::from(vec![b'x'; size as usize]))
                .expect("put");
        }
        let cos = CosClient::new(&store, NetworkProfile::instant(), 0);
        kernel.run("client", || {
            let objs = discover(&cos, &DataSource::bucket("b")).expect("discovery");
            let parts = partition_objects(&objs, chunk).expect("non-zero chunk");
            // Global indices are sequential.
            for (i, p) in parts.iter().enumerate() {
                prop_assert_eq!(p.index, i);
            }
            // Per object: ranges tile [0, size) without gaps or overlaps.
            for (i, &size) in sizes.iter().enumerate() {
                let key = format!("obj{i}");
                let mut expected_start = 0;
                let mut covered = 0;
                for p in parts.iter().filter(|p| p.key == key) {
                    prop_assert_eq!(p.start, expected_start);
                    prop_assert!(p.end <= size || (size == 0 && p.end == 0));
                    expected_start = p.end;
                    covered = p.end;
                }
                prop_assert_eq!(covered, size);
                if let Some(c) = chunk {
                    let expected = if size == 0 { 1 } else { size.div_ceil(c) as usize };
                    prop_assert_eq!(parts.iter().filter(|p| p.key == key).count(), expected);
                }
            }
            Ok(())
        })?;
    }

    /// Newline-aligned reads reassemble the original object byte-for-byte,
    /// for arbitrary line lengths (including empty lines and a missing
    /// trailing newline).
    #[test]
    fn aligned_reads_reassemble(
        lines in prop::collection::vec("[a-z]{0,40}", 0..30),
        trailing_newline in any::<bool>(),
        chunk in 1u64..64,
    ) {
        let mut text = lines.join("\n");
        if trailing_newline && !text.is_empty() {
            text.push('\n');
        }
        let kernel = Kernel::new();
        let store = ObjectStore::new(&kernel);
        store.create_bucket("b").expect("fresh bucket");
        store.put("b", "f", Bytes::from(text.clone().into_bytes())).expect("put");
        let cos = CosClient::new(&store, NetworkProfile::instant(), 0);
        kernel.run("client", || {
            let objs = discover(&cos, &DataSource::Keys(vec![ObjectRef::new("b", "f")]))
                .expect("discovery");
            let parts = partition_objects(&objs, Some(chunk)).expect("non-zero chunk");
            let mut assembled = Vec::new();
            for p in &parts {
                assembled.extend_from_slice(&read_aligned(&cos, p).expect("aligned read"));
            }
            prop_assert_eq!(assembled, text.as_bytes());
            Ok(())
        })?;
    }
}
