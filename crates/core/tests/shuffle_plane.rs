//! Shuffle data-plane acceptance tests: cross-plane equivalence, empty
//! partition elision, combiners, submit-time validation, and typed errors
//! under chaos.

use std::time::Duration;

use rustwren_core::{
    CorruptMode, DataSource, ExchangeMode, FaultPlan, Partitioner, PathScope, PywrenError,
    ShuffleOpts, ShufflePlane, SimCloud, TaskCtx, TimeWindow, Value, MAX_REDUCERS,
};
use rustwren_sim::NetworkProfile;

fn test_cloud(seed: u64) -> SimCloud {
    SimCloud::builder()
        .seed(seed)
        .client_network(NetworkProfile::lan())
        .build()
}

/// Map: each input int emits (word, n) pairs over a fixed vocabulary.
/// Reduce: sums the values per word. Deterministic and key-skewed enough
/// to exercise multi-run merges.
fn register_sum_job(cloud: &SimCloud) {
    cloud.register_fn("emit-pairs", |_ctx: &TaskCtx, v: Value| {
        let n = v.as_i64().ok_or("int")?;
        let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
        Ok(Value::List(
            (0..12)
                .map(|i| {
                    Value::map()
                        .with("k", words[((n + i) % 6) as usize])
                        .with("v", n + i)
                })
                .collect(),
        ))
    });
    cloud.register_fn("sum-per-key", |_ctx: &TaskCtx, v: Value| {
        let groups = v.get("groups").and_then(Value::as_map).ok_or("groups")?;
        Ok(Value::Map(
            groups
                .iter()
                .map(|(k, vals)| {
                    let sum: i64 = vals
                        .as_list()
                        .map_or(0, |l| l.iter().filter_map(Value::as_i64).sum());
                    (k.clone(), Value::Int(sum))
                })
                .collect(),
        ))
    });
    cloud.register_fn("sum-combiner", |_ctx: &TaskCtx, v: Value| {
        let sum: i64 = v.req_list("vs")?.iter().filter_map(Value::as_i64).sum();
        Ok(Value::Int(sum))
    });
}

fn run_sum_job(seed: u64, opts: ShuffleOpts) -> (Vec<Value>, u64) {
    let cloud = test_cloud(seed);
    register_sum_job(&cloud);
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map_shuffle_reduce(
            "emit-pairs",
            DataSource::Values((0..20).map(Value::from).collect()),
            "sum-per-key",
            opts.clone(),
        )
        .unwrap();
        let results = exec.get_result().unwrap();
        (results, exec.cos_op_stats().agent.puts)
    })
}

#[test]
fn all_planes_produce_bitwise_identical_results() {
    let arms = [
        (ShufflePlane::WholeObject, ExchangeMode::Cos),
        (ShufflePlane::Partitioned, ExchangeMode::Cos),
        (ShufflePlane::Partitioned, ExchangeMode::Relay),
    ];
    let outputs: Vec<Vec<Value>> = arms
        .iter()
        .map(|&(plane, exchange)| {
            run_sum_job(
                77,
                ShuffleOpts {
                    reducers: 4,
                    plane,
                    exchange,
                    ..ShuffleOpts::default()
                },
            )
            .0
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "partitioned != whole-object");
    assert_eq!(outputs[1], outputs[2], "relay != partitioned COS");
    // Bitwise: the encoded wire bytes agree, not just structural equality.
    for (r, (a, b)) in outputs[0].iter().zip(&outputs[1]).enumerate() {
        assert_eq!(
            a.encode(),
            b.encode(),
            "reducer {r} bytes differ across planes"
        );
    }
}

#[test]
fn small_fanin_merge_matches_single_round_merge() {
    // Many maps + tiny fan-in forces multiple merge rounds on the reduce
    // side; the grouped output must not depend on the round structure.
    let narrow = run_sum_job(
        78,
        ShuffleOpts {
            reducers: 2,
            merge_fanin: 2,
            ..ShuffleOpts::default()
        },
    )
    .0;
    let wide = run_sum_job(
        78,
        ShuffleOpts {
            reducers: 2,
            merge_fanin: 64,
            ..ShuffleOpts::default()
        },
    )
    .0;
    assert_eq!(narrow, wide);
}

#[test]
fn empty_partitions_are_elided_not_put() {
    // Sparse: every map emits a single key, so 15 of 16 partitions are
    // empty for every map. The old plane PUT all 16 per map regardless;
    // elision must make the sparse job's agent PUTs strictly cheaper than
    // the dense job's on the same plane and scale.
    let dense_opts = ShuffleOpts {
        reducers: 16,
        plane: ShufflePlane::WholeObject,
        ..ShuffleOpts::default()
    };
    let cloud = test_cloud(79);
    cloud.register_fn("emit-one-key", |_ctx: &TaskCtx, v: Value| {
        let n = v.as_i64().ok_or("int")?;
        Ok(Value::List(vec![Value::map()
            .with("k", "lonely")
            .with("v", n)]))
    });
    register_sum_job(&cloud);
    let (results, sparse_puts) = cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map_shuffle_reduce(
            "emit-one-key",
            DataSource::Values((0..10).map(Value::from).collect()),
            "sum-per-key",
            dense_opts.clone(),
        )
        .unwrap();
        let results = exec.get_result().unwrap();
        (results, exec.cos_op_stats().agent.puts)
    });
    // All sixteen reducers complete: fifteen see declared-absent
    // partitions and report empty maps instead of waiting or failing.
    assert_eq!(results.len(), 16);
    let total: i64 = results
        .iter()
        .filter_map(|r| r.as_map())
        .flat_map(|m| m.values().map(|v| v.as_i64().unwrap_or(0)))
        .sum();
    assert_eq!(total, (0..10).sum::<i64>());

    let (_, dense_puts) = run_sum_job(79, dense_opts);
    // The sum job spreads keys over 6 of 16 partitions; the sparse job
    // fills exactly 1. Same map count, so elision is the only difference.
    assert!(
        sparse_puts < dense_puts,
        "sparse ({sparse_puts} agent puts) must elide partitions the dense job ({dense_puts}) writes"
    );
}

#[test]
fn combiner_preserves_sums_and_runs_map_side() {
    let plain = run_sum_job(
        80,
        ShuffleOpts {
            reducers: 3,
            ..ShuffleOpts::default()
        },
    )
    .0;
    let combined = run_sum_job(
        80,
        ShuffleOpts {
            reducers: 3,
            combiner: Some("sum-combiner".into()),
            ..ShuffleOpts::default()
        },
    )
    .0;
    // Summing is associative+commutative, so pre-aggregating map-side must
    // not change any reducer's per-key totals.
    assert_eq!(plain, combined);
}

#[test]
fn range_partitioner_yields_globally_sorted_reducer_ranges() {
    let cloud = test_cloud(81);
    cloud.register_fn("emit-key", |_ctx: &TaskCtx, v: Value| {
        let n = v.as_i64().ok_or("int")?;
        Ok(Value::List(vec![Value::map()
            .with("k", format!("key-{:03}", (n * 37) % 100))
            .with("v", 1i64)]))
    });
    cloud.register_fn("collect-keys", |_ctx: &TaskCtx, v: Value| {
        let groups = v.get("groups").and_then(Value::as_map).ok_or("groups")?;
        Ok(Value::List(
            groups.keys().map(|k| Value::from(k.as_str())).collect(),
        ))
    });
    let samples: Vec<String> = (0..100)
        .map(|n| format!("key-{:03}", (n * 37) % 100))
        .collect();
    let part = Partitioner::range_from_samples(samples, 4);
    let results = cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map_shuffle_reduce(
            "emit-key",
            DataSource::Values((0..100).map(Value::from).collect()),
            "collect-keys",
            ShuffleOpts {
                reducers: 4,
                partitioner: part.clone(),
                ..ShuffleOpts::default()
            },
        )
        .unwrap();
        exec.get_result().unwrap()
    });
    // Concatenating reducer outputs in index order gives a globally sorted
    // key sequence — the CloudSort property.
    let flat: Vec<String> = results
        .iter()
        .flat_map(|r| r.as_list().unwrap().iter())
        .map(|k| k.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(flat.len(), 100);
    assert!(flat.windows(2).all(|w| w[0] < w[1]), "not sorted: {flat:?}");
}

#[test]
fn submit_rejects_absurd_configs_with_typed_errors() {
    let cloud = test_cloud(82);
    register_sum_job(&cloud);
    let cases: Vec<(ShuffleOpts, &str)> = vec![
        (
            ShuffleOpts {
                reducers: MAX_REDUCERS + 1,
                ..ShuffleOpts::default()
            },
            "exceeds the supported maximum",
        ),
        (
            ShuffleOpts {
                reducers: 0,
                ..ShuffleOpts::default()
            },
            "at least one reducer",
        ),
        (
            ShuffleOpts {
                merge_fanin: 1,
                ..ShuffleOpts::default()
            },
            "merge_fanin",
        ),
        (
            ShuffleOpts {
                plane: ShufflePlane::WholeObject,
                exchange: ExchangeMode::Relay,
                ..ShuffleOpts::default()
            },
            "relay exchange requires the partitioned",
        ),
        (
            ShuffleOpts {
                plane: ShufflePlane::WholeObject,
                combiner: Some("sum-combiner".into()),
                ..ShuffleOpts::default()
            },
            "combiner requires the partitioned",
        ),
        (
            ShuffleOpts {
                combiner: Some("not-registered".into()),
                ..ShuffleOpts::default()
            },
            "not registered",
        ),
        (
            ShuffleOpts {
                reducers: 4,
                partitioner: Partitioner::Range {
                    boundaries: vec!["m".into()],
                },
                ..ShuffleOpts::default()
            },
            "boundary",
        ),
    ];
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        for (opts, needle) in &cases {
            let err = exec
                .map_shuffle_reduce(
                    "emit-pairs",
                    DataSource::Values(vec![Value::Int(1)]),
                    "sum-per-key",
                    opts.clone(),
                )
                .unwrap_err();
            assert!(
                matches!(err, PywrenError::Config(_)),
                "expected Config error, got: {err}"
            );
            assert!(
                err.to_string().contains(needle),
                "missing `{needle}`: {err}"
            );
        }
    });
}

#[test]
fn corrupted_shuffle_data_is_a_typed_error_not_a_panic() {
    // Maps compute long enough that a corruption window opening mid-job
    // hits only the reduce phase's fetches. The reducer must surface a
    // typed error (the old code path panicked in the agent on any dep
    // fetch irregularity), and the job must not hang.
    let plan = FaultPlan::new(84).corrupt_get(
        PathScope::prefix("jobs/"),
        TimeWindow::starting_at(Duration::from_secs(8)),
        CorruptMode::FlipByte,
        1.0,
    );
    let cloud = SimCloud::builder()
        .seed(84)
        .client_network(NetworkProfile::lan())
        .chaos(plan)
        .build();
    cloud.register_fn("slow-emit", |ctx: &TaskCtx, v: Value| {
        ctx.charge(Duration::from_secs(10));
        let n = v.as_i64().ok_or("int")?;
        Ok(Value::List(vec![Value::map().with("k", "x").with("v", n)]))
    });
    register_sum_job(&cloud);
    cloud.run(|| {
        let exec = cloud.executor().build().unwrap();
        exec.map_shuffle_reduce(
            "slow-emit",
            DataSource::Values((0..4).map(Value::from).collect()),
            "sum-per-key",
            ShuffleOpts {
                reducers: 2,
                ..ShuffleOpts::default()
            },
        )
        .unwrap();
        let err = exec.get_result().unwrap_err();
        assert!(
            matches!(
                err,
                PywrenError::Task { .. } | PywrenError::Integrity { .. }
            ),
            "typed error, got: {err}"
        );
    });
    assert!(cloud.chaos_stats().corruptions > 0, "the fault plan fired");
}
