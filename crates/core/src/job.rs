//! Job staging and the in-cloud function agent.
//!
//! A *job* is one `call_async`/`map`/`map_reduce` submission. The client
//! stages into COS, per job: one **function blob** (the modeled serialized
//! user code) and one **input object** per task; it then invokes the agent
//! action once per task with a small descriptor payload. The agent — the
//! code that runs inside every IBM-PyWren container — downloads the blob
//! and input, executes the user function from the registry, and writes a
//! **result** and a **status** object back to COS, which the client polls.
//!
//! COS layout (per executor `e`, job `j`, task `n`):
//!
//! ```text
//! jobs/e/j/func            the function blob
//! jobs/e/j/t00000/input    task input descriptor
//! jobs/e/j/t00000/result   encoded result value (on success)
//! jobs/e/j/t00000/status   {"state": "done"|"error", timings…}
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::Weak;
use std::time::Duration;

use bytes::Bytes;
use rustwren_faas::{ActionError, ActivationCtx};
use rustwren_sim::hash::hash2;
use rustwren_store::CosClient;

use crate::cloud::{CloudInner, SimCloud};
use crate::error::PywrenError;
use crate::future::ResponseFuture;
use crate::partition::{read_aligned, Partition};
use crate::task::TaskCtx;
use crate::wire::{self, Value};

/// Chaos crash phase: the agent has decoded its payload but not yet run the
/// user function (models a container dying mid-download).
pub const PHASE_BEFORE_RUN: &str = "agent:before-run";
/// Chaos crash phase: the user function finished but the result was not yet
/// written to COS.
pub const PHASE_AFTER_COMPUTE: &str = "agent:after-compute";
/// Chaos crash phase: the result object was written but the `done` status
/// was not — the client sees a task with a result and no status.
pub const PHASE_AFTER_PUT: &str = "agent:after-put";
/// Chaos crash phase: a remote invoker activation dies before spawning its
/// task group (models an invoker kill — its tasks never get activations).
pub const PHASE_INVOKER: &str = "invoker";

/// Panics if the installed chaos engine schedules a crash for `phase` now.
/// `token` individualizes the draw (the activation id, typically).
pub(crate) fn chaos_crash_point(phase: &str, token: u64) {
    if let Some(chaos) = rustwren_sim::chaos::current() {
        if chaos.should_crash(phase, token) {
            panic!("chaos: injected crash at {phase}");
        }
    }
}

/// Writes a staged object with the end-to-end checksum stamp. Every staged
/// write in the system (func, input, status, result, shuffle) goes through
/// here, so readers can always demand a valid stamp.
pub(crate) fn put_stamped(
    cos: &CosClient,
    bucket: &str,
    key: &str,
    payload: &[u8],
) -> Result<(), rustwren_store::StoreError> {
    cos.put(bucket, key, wire::stamp(payload)).map(|_| ())
}

/// Reads a staged object and verifies its checksum stamp, surfacing a
/// failure as the typed [`PywrenError::Integrity`].
pub(crate) fn get_verified(
    cos: &CosClient,
    bucket: &str,
    key: &str,
) -> crate::error::Result<Bytes> {
    // A stamp failure means the *read* was corrupted — the stored object is
    // intact — so a couple of immediate re-fetches usually heal it without
    // burning a whole task attempt.
    let mut last = None;
    for _ in 0..3 {
        let raw = cos.get(bucket, key).map_err(PywrenError::Storage)?;
        match wire::verify_stamped(&raw) {
            Ok(_) => return Ok(raw.slice(wire::STAMP_LEN..)),
            Err(e) => {
                last = Some(PywrenError::Integrity {
                    key: format!("{bucket}/{key}"),
                    detail: e.to_string(),
                });
            }
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Key of a job's function blob.
pub(crate) fn func_key(exec_id: &str, job_id: u64) -> String {
    format!("jobs/{exec_id}/{job_id}/func")
}

/// The small payload carried by each agent invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AgentPayload {
    pub bucket: String,
    pub exec_id: String,
    pub job_id: u64,
    pub task: u32,
    pub func_name: String,
}

impl AgentPayload {
    pub(crate) fn encode(&self) -> Bytes {
        Value::map()
            .with("bucket", self.bucket.as_str())
            .with("exec", self.exec_id.as_str())
            .with("job", self.job_id as i64)
            .with("task", i64::from(self.task))
            .with("func", self.func_name.as_str())
            .encode()
    }

    pub(crate) fn decode(raw: &[u8]) -> Result<AgentPayload, String> {
        let v = Value::decode(raw).map_err(|e| e.to_string())?;
        Ok(AgentPayload {
            bucket: v.req_str("bucket")?.to_owned(),
            exec_id: v.req_str("exec")?.to_owned(),
            job_id: v.req_i64("job")? as u64,
            task: v.req_i64("task")? as u32,
            func_name: v.req_str("func")?.to_owned(),
        })
    }

    pub(crate) fn future(&self) -> ResponseFuture {
        ResponseFuture::new(&self.bucket, &self.exec_id, self.job_id, self.task)
    }
}

/// Task input descriptors, stored as the task's `input` object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TaskSpec {
    /// A plain value (the `map()` path).
    Value(Value),
    /// A storage partition the agent must fetch and align (`map_reduce`).
    Partition(Partition),
    /// A reduce task: wait for `deps`, gather their results.
    Reduce {
        deps: Vec<ResponseFuture>,
        group: Option<String>,
        poll: Duration,
    },
    /// A shuffling map task: run the inner spec's function, then hash-
    /// partition its `(key, value)` output pairs into `reducers` COS
    /// objects (`…/shuffle-R`).
    ShuffleMap {
        inner: Box<TaskSpec>,
        reducers: usize,
    },
    /// A shuffle-reduce task: wait for the map `deps`, read every map's
    /// `shuffle-{index}` object, group pairs by key, and hand the groups to
    /// the reduce function.
    ShuffleReduce {
        deps: Vec<ResponseFuture>,
        index: usize,
        poll: Duration,
    },
}

impl TaskSpec {
    pub(crate) fn to_value(&self) -> Value {
        match self {
            TaskSpec::Value(v) => Value::map().with("kind", "value").with("value", v.clone()),
            TaskSpec::Partition(p) => Value::map()
                .with("kind", "partition")
                .with("part", p.to_value()),
            TaskSpec::Reduce { deps, group, poll } => {
                let group_v = group
                    .as_deref()
                    .map_or(Value::Null, |g| Value::Str(g.to_owned()));
                Value::map()
                    .with("kind", "reduce")
                    .with(
                        "deps",
                        Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                    )
                    .with("group", group_v)
                    .with("poll_ms", poll.as_millis() as i64)
            }
            TaskSpec::ShuffleMap { inner, reducers } => Value::map()
                .with("kind", "shuffle-map")
                .with("inner", inner.to_value())
                .with("reducers", *reducers as i64),
            TaskSpec::ShuffleReduce { deps, index, poll } => Value::map()
                .with("kind", "shuffle-reduce")
                .with(
                    "deps",
                    Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                )
                .with("index", *index as i64)
                .with("poll_ms", poll.as_millis() as i64),
        }
    }
}

/// Key of one map task's shuffle partition for reducer `r`.
pub(crate) fn shuffle_key(task_prefix: &str, r: usize) -> String {
    format!("{task_prefix}/shuffle-{r:04}")
}

/// Stable reducer assignment for a shuffle key.
pub(crate) fn shuffle_bucket_of(key: &str, reducers: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-ish fold, then mix
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (rustwren_sim::hash::mix64(h) % reducers.max(1) as u64) as usize
}

/// Builds a status object body.
pub(crate) fn status_value(state: &str, error: Option<&str>, start: f64, end: f64) -> Value {
    let mut v = Value::map()
        .with("state", state)
        .with("start", start)
        .with("end", end);
    if let Some(e) = error {
        v = v.with("error", e);
    }
    v
}

/// The agent body: runs inside every IBM-PyWren function container.
pub(crate) fn run_agent(
    cloud: &Weak<CloudInner>,
    ctx: &ActivationCtx,
    raw_payload: Bytes,
) -> Result<Bytes, ActionError> {
    let inner = cloud
        .upgrade()
        .ok_or_else(|| ActionError("cloud was torn down".into()))?;
    let cloud = SimCloud::from_inner(inner);
    let payload =
        AgentPayload::decode(&raw_payload).map_err(|e| ActionError(format!("bad payload: {e}")))?;
    let cos = ctx.cos_client();
    let fut = payload.future();
    let started = ctx.now().as_secs_f64();
    let crash_token = hash2(ctx.activation_id().0, 0xA6E7);

    chaos_crash_point(PHASE_BEFORE_RUN, crash_token);
    let outcome = execute_task(&cloud, ctx, &cos, &payload);

    let ended = ctx.now().as_secs_f64();
    // Best-effort status/result write: the client's wait() relies on it.
    match &outcome {
        Ok(result) => {
            chaos_crash_point(PHASE_AFTER_COMPUTE, crash_token);
            put_stamped(&cos, &payload.bucket, &fut.result_key(), &result.encode())
                .map_err(|e| ActionError(format!("writing result: {e}")))?;
            chaos_crash_point(PHASE_AFTER_PUT, crash_token);
            put_stamped(
                &cos,
                &payload.bucket,
                &fut.status_key(),
                &status_value("done", None, started, ended).encode(),
            )
            .map_err(|e| ActionError(format!("writing status: {e}")))?;
            Ok(Bytes::from_static(b"ok"))
        }
        Err(msg) => {
            // Under speculative execution two copies of the task race; a
            // completed `done` status must never be clobbered by a slower
            // copy's error (first successful completion wins). A status
            // that fails its stamp check is treated as not-done: wrongly
            // overwriting a corrupted-on-read `done` status is safe (the
            // stored object wins at most once), silently keeping a bad one
            // is not.
            let done_already = get_verified(&cos, &payload.bucket, &fut.status_key())
                .ok()
                .and_then(|raw| Value::decode(&raw).ok())
                .is_some_and(|s| s.get("state").and_then(Value::as_str) == Some("done"));
            if !done_already {
                put_stamped(
                    &cos,
                    &payload.bucket,
                    &fut.status_key(),
                    &status_value("error", Some(msg), started, ended).encode(),
                )
                .map_err(|e| ActionError(format!("writing status: {e}")))?;
            }
            Err(ActionError(msg.clone()))
        }
    }
}

fn execute_task(
    cloud: &SimCloud,
    ctx: &ActivationCtx,
    cos: &CosClient,
    payload: &AgentPayload,
) -> Result<Value, String> {
    let fut = payload.future();
    // Download the "pickled" function, as the real agent does.
    let _code = get_verified(
        cos,
        &payload.bucket,
        &func_key(&payload.exec_id, payload.job_id),
    )
    .map_err(|e| format!("fetching function: {e}"))?;
    let input_raw = get_verified(
        cos,
        &payload.bucket,
        &format!("{}/input", fut.task_prefix()),
    )
    .map_err(|e| format!("fetching input: {e}"))?;
    let desc = Value::decode(&input_raw).map_err(|e| format!("decoding input: {e}"))?;

    let func = cloud
        .registry()
        .get(&payload.func_name)
        .ok_or_else(|| format!("function `{}` not registered", payload.func_name))?;
    let task_ctx = TaskCtx::new(ctx.clone(), cloud.clone());
    let call = |input: Value| -> Result<Value, String> {
        match panic::catch_unwind(AssertUnwindSafe(|| func.call(&task_ctx, input))) {
            Ok(result) => result,
            Err(p) => Err(format!("function panicked: {}", panic_text(&p))),
        }
    };

    match desc.req_str("kind")? {
        "shuffle-map" => {
            let reducers = desc.req_i64("reducers")?.max(1) as usize;
            let inner = desc.get("inner").ok_or("missing field `inner`")?;
            let input = build_input(ctx, cos, inner)?;
            let output = call(input)?;
            write_shuffle_partitions(cos, payload, &fut, output, reducers)
        }
        "shuffle-reduce" => {
            let input = build_shuffle_reduce_input(ctx, cos, &desc)?;
            call(input)
        }
        _ => {
            let input = build_input(ctx, cos, &desc)?;
            call(input)
        }
    }
}

/// Hash-partitions a shuffling map task's `(key, value)` pairs into one COS
/// object per reducer; returns the summary stored as the task result.
fn write_shuffle_partitions(
    cos: &CosClient,
    payload: &AgentPayload,
    fut: &ResponseFuture,
    output: Value,
    reducers: usize,
) -> Result<Value, String> {
    let pairs = output
        .as_list()
        .ok_or("shuffle map functions must return a list of {k, v} pairs")?;
    let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); reducers];
    for pair in pairs {
        let key = pair.req_str("k")?;
        buckets[shuffle_bucket_of(key, reducers)].push(pair.clone());
    }
    let total = pairs.len();
    for (r, bucket) in buckets.into_iter().enumerate() {
        put_stamped(
            cos,
            &payload.bucket,
            &shuffle_key(&fut.task_prefix(), r),
            &Value::List(bucket).encode(),
        )
        .map_err(|e| format!("writing shuffle partition {r}: {e}"))?;
    }
    Ok(Value::map()
        .with("pairs", total as i64)
        .with("reducers", reducers as i64))
}

/// Gathers one reducer's shuffle partitions from every map task and groups
/// the pairs by key.
fn build_shuffle_reduce_input(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
) -> Result<Value, String> {
    let deps = desc
        .req_list("deps")?
        .iter()
        .map(ResponseFuture::from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let index = desc.req_i64("index")?.max(0) as usize;
    let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);
    wait_for_deps(ctx, cos, &deps, poll)?;

    let mut groups: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
    for d in &deps {
        let raw = get_verified(cos, d.bucket(), &shuffle_key(&d.task_prefix(), index))
            .map_err(|e| format!("fetching shuffle partition: {e}"))?;
        let pairs = Value::decode(&raw).map_err(|e| format!("decoding shuffle data: {e}"))?;
        for pair in pairs.as_list().ok_or("shuffle object must hold a list")? {
            let k = pair.req_str("k")?;
            let v = pair.get("v").cloned().unwrap_or(Value::Null);
            match groups
                .entry(k.to_owned())
                .or_insert_with(|| Value::List(Vec::new()))
            {
                Value::List(items) => items.push(v),
                _ => unreachable!("groups only hold lists"),
            }
        }
    }
    Ok(Value::map()
        .with("index", index as i64)
        .with("groups", Value::Map(groups)))
}

/// Materializes the user function's input from the task descriptor,
/// merging any job-level `extra` entries into map-shaped inputs.
fn build_input(ctx: &ActivationCtx, cos: &CosClient, desc: &Value) -> Result<Value, String> {
    let input = build_input_base(ctx, cos, desc)?;
    let Some(extra) = desc.get("extra").and_then(Value::as_map) else {
        return Ok(input);
    };
    match input {
        Value::Map(mut m) => {
            for (k, v) in extra {
                m.entry(k.clone()).or_insert_with(|| v.clone());
            }
            Ok(Value::Map(m))
        }
        other => Ok(Value::map()
            .with("value", other)
            .with("extra", Value::Map(extra.clone()))),
    }
}

fn build_input_base(ctx: &ActivationCtx, cos: &CosClient, desc: &Value) -> Result<Value, String> {
    match desc.req_str("kind")? {
        "value" => Ok(desc.get("value").cloned().unwrap_or(Value::Null)),
        "partition" => {
            let part = Partition::from_value(desc.get("part").ok_or("missing field `part`")?)?;
            let data = read_aligned(cos, &part).map_err(|e| e.to_string())?;
            Ok(part
                .to_value()
                .with("group", part.key.as_str())
                .with("data", Value::bytes(data.to_vec())))
        }
        "reduce" => {
            let deps = desc
                .req_list("deps")?
                .iter()
                .map(ResponseFuture::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);
            let group = desc.get("group").cloned().unwrap_or(Value::Null);

            wait_for_deps(ctx, cos, &deps, poll)?;

            let mut results = Vec::with_capacity(deps.len());
            for d in &deps {
                let status_raw = get_verified(cos, d.bucket(), &d.status_key())
                    .map_err(|e| format!("fetching dep status: {e}"))?;
                let status =
                    Value::decode(&status_raw).map_err(|e| format!("decoding dep status: {e}"))?;
                if status.req_str("state")? != "done" {
                    let msg = status
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error");
                    return Err(format!("map task {} failed: {msg}", d.label()));
                }
                let result_raw = get_verified(cos, d.bucket(), &d.result_key())
                    .map_err(|e| format!("fetching dep result: {e}"))?;
                results.push(Value::decode(&result_raw).map_err(|e| format!("decoding dep: {e}"))?);
            }
            Ok(Value::map()
                .with("group", group)
                .with("results", Value::List(results)))
        }
        other => Err(format!("unknown task kind `{other}`")),
    }
}

/// "The reduce function will wait for all the partial results before
/// processing them" (§4.3): poll COS until every dependency has a status.
fn wait_for_deps(
    ctx: &ActivationCtx,
    cos: &CosClient,
    deps: &[ResponseFuture],
    poll: Duration,
) -> Result<(), String> {
    // One LIST per distinct job prefix covers all dependencies cheaply;
    // precompute the wanted status keys so each poll is a set intersection.
    let mut prefixes: Vec<(&str, String)> = Vec::new();
    let mut wanted: std::collections::HashSet<String> =
        std::collections::HashSet::with_capacity(deps.len());
    for d in deps {
        let p = (d.bucket(), d.job_prefix());
        if !prefixes.iter().any(|q| q.0 == p.0 && q.1 == p.1) {
            prefixes.push(p);
        }
        wanted.insert(d.status_key());
    }
    loop {
        let mut done = 0usize;
        for (bucket, prefix) in &prefixes {
            let listed = cos
                .list(bucket, prefix)
                .map_err(|e| format!("listing statuses: {e}"))?;
            for meta in listed {
                if wanted.contains(&meta.key) {
                    done += 1;
                }
            }
        }
        if done >= deps.len() {
            return Ok(());
        }
        if ctx.remaining() < poll {
            return Err(format!(
                "reducer ran out of time waiting for {}/{} map results",
                done,
                deps.len()
            ));
        }
        rustwren_sim::sleep(poll);
    }
}

fn panic_text(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_payload_roundtrip() {
        let p = AgentPayload {
            bucket: "b".into(),
            exec_id: "e1".into(),
            job_id: 4,
            task: 9,
            func_name: "tone".into(),
        };
        assert_eq!(AgentPayload::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn agent_payload_decode_rejects_garbage() {
        assert!(AgentPayload::decode(b"nonsense").is_err());
        assert!(AgentPayload::decode(&Value::map().with("bucket", "b").encode()).is_err());
    }

    #[test]
    fn task_specs_encode_their_kind() {
        let v = TaskSpec::Value(Value::Int(5)).to_value();
        assert_eq!(v.req_str("kind"), Ok("value"));
        let p = TaskSpec::Partition(Partition {
            bucket: "b".into(),
            key: "k".into(),
            start: 0,
            end: 10,
            index: 0,
        })
        .to_value();
        assert_eq!(p.req_str("kind"), Ok("partition"));
        let r = TaskSpec::Reduce {
            deps: vec![ResponseFuture::new("b", "e", 1, 0)],
            group: Some("nyc".into()),
            poll: Duration::from_millis(500),
        }
        .to_value();
        assert_eq!(r.req_str("kind"), Ok("reduce"));
        assert_eq!(r.req_i64("poll_ms"), Ok(500));
        assert_eq!(r.get("group").and_then(Value::as_str), Some("nyc"));
    }

    #[test]
    fn status_value_carries_error() {
        let s = status_value("error", Some("boom"), 1.0, 2.0);
        assert_eq!(s.req_str("state"), Ok("error"));
        assert_eq!(s.get("error").and_then(Value::as_str), Some("boom"));
        let ok = status_value("done", None, 1.0, 2.0);
        assert!(ok.get("error").is_none());
    }

    #[test]
    fn func_key_layout() {
        assert_eq!(func_key("e2", 7), "jobs/e2/7/func");
    }
}
