//! Job staging and the in-cloud function agent.
//!
//! A *job* is one `call_async`/`map`/`map_reduce` submission. The client
//! stages into COS, per job: one **function blob** (the modeled serialized
//! user code) and one **input object** per task; it then invokes the agent
//! action once per task with a small descriptor payload. The agent — the
//! code that runs inside every IBM-PyWren container — downloads the blob
//! and input, executes the user function from the registry, and writes a
//! **result** and a **status** object back to COS, which the client polls.
//!
//! COS layout (per executor `e`, job `j`, task `n`):
//!
//! ```text
//! jobs/e/j/func            the function blob
//! jobs/e/j/t00000/input    task input descriptor
//! jobs/e/j/t00000/result   encoded result value (on success)
//! jobs/e/j/t00000/status   {"state": "done"|"error", timings…}
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::Weak;
use std::time::Duration;

use bytes::Bytes;
use rustwren_faas::{ActionError, ActivationCtx};
use rustwren_sim::hash::hash2;
use rustwren_store::CosClient;

use crate::cloud::{CloudInner, SimCloud};
use crate::error::PywrenError;
use crate::future::ResponseFuture;
use crate::partition::{read_aligned, Partition};
use crate::task::TaskCtx;
use crate::wire::{self, Value};

/// Chaos crash phase: the agent has decoded its payload but not yet run the
/// user function (models a container dying mid-download).
pub const PHASE_BEFORE_RUN: &str = "agent:before-run";
/// Chaos crash phase: the user function finished but the result was not yet
/// written to COS.
pub const PHASE_AFTER_COMPUTE: &str = "agent:after-compute";
/// Chaos crash phase: the result object was written but the `done` status
/// was not — the client sees a task with a result and no status.
pub const PHASE_AFTER_PUT: &str = "agent:after-put";
/// Chaos crash phase: a remote invoker activation dies before spawning its
/// task group (models an invoker kill — its tasks never get activations).
pub const PHASE_INVOKER: &str = "invoker";

/// Panics if the installed chaos engine schedules a crash for `phase` now.
/// `token` individualizes the draw (the activation id, typically).
pub(crate) fn chaos_crash_point(phase: &str, token: u64) {
    if let Some(chaos) = rustwren_sim::chaos::current() {
        if chaos.should_crash(phase, token) {
            panic!("chaos: injected crash at {phase}");
        }
    }
}

/// Writes a staged object with the end-to-end checksum stamp. Every staged
/// write in the system (func, input, status, result, shuffle) goes through
/// here, so readers can always demand a valid stamp.
pub(crate) fn put_stamped(
    cos: &CosClient,
    bucket: &str,
    key: &str,
    payload: &[u8],
) -> Result<(), rustwren_store::StoreError> {
    cos.put(bucket, key, wire::stamp(payload)).map(|_| ())
}

/// Reads a staged object and verifies its checksum stamp, returning the
/// *whole stamped representation* (magic + checksum + payload) — the form
/// the container-local blob cache stores, so cache hits can be re-validated
/// against the same stamp. Surfaces failure as [`PywrenError::Integrity`].
pub(crate) fn get_stamped_raw(
    cos: &CosClient,
    bucket: &str,
    key: &str,
) -> crate::error::Result<Bytes> {
    // A stamp failure means the *read* was corrupted — the stored object is
    // intact — so a couple of immediate re-fetches usually heal it without
    // burning a whole task attempt.
    let mut last = None;
    for _ in 0..3 {
        let raw = cos.get(bucket, key).map_err(PywrenError::Storage)?;
        match wire::verify_stamped(&raw) {
            Ok(_) => return Ok(raw),
            Err(e) => {
                last = Some(PywrenError::Integrity {
                    key: format!("{bucket}/{key}"),
                    detail: e.to_string(),
                });
            }
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Reads a staged object and verifies its checksum stamp, surfacing a
/// failure as the typed [`PywrenError::Integrity`].
pub(crate) fn get_verified(
    cos: &CosClient,
    bucket: &str,
    key: &str,
) -> crate::error::Result<Bytes> {
    get_stamped_raw(cos, bucket, key).map(|raw| raw.slice(wire::STAMP_LEN..))
}

/// Key of a job's function blob.
pub(crate) fn func_key(exec_id: &str, job_id: u64) -> String {
    format!("jobs/{exec_id}/{job_id}/func")
}

/// The small payload carried by each agent invocation. With the inline
/// data path, the task descriptor itself may ride along (`inline`),
/// eliminating the staged input object and its PUT/GET round trip.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AgentPayload {
    pub bucket: String,
    pub exec_id: String,
    pub job_id: u64,
    pub task: u32,
    pub func_name: String,
    /// Inlined task descriptor: when set, the agent uses this instead of
    /// fetching `…/input` from COS (which is never staged for such tasks).
    pub inline: Option<Value>,
    /// Whether the agent may serve the function blob from the
    /// container-local cache instead of re-fetching it from COS.
    pub cache: bool,
    /// Whether reducers watch dependencies with one batched LIST per poll
    /// tick (instead of the legacy O(deps) per-key probes).
    pub batch: bool,
    /// Inline-result threshold: results whose encoding is at most this many
    /// bytes ride inside the status object (one PUT completes the task and
    /// delivers the result). `0` always stages the result separately.
    pub inline_max: usize,
}

impl AgentPayload {
    pub(crate) fn encode(&self) -> Bytes {
        let mut v = Value::map()
            .with("bucket", self.bucket.as_str())
            .with("exec", self.exec_id.as_str())
            .with("job", self.job_id as i64)
            .with("task", i64::from(self.task))
            .with("func", self.func_name.as_str())
            .with("cache", self.cache)
            .with("batch", self.batch)
            .with("ilmax", self.inline_max as i64);
        if let Some(inline) = &self.inline {
            v = v.with("inline", inline.clone());
        }
        v.encode()
    }

    pub(crate) fn decode(raw: &[u8]) -> Result<AgentPayload, String> {
        let v = Value::decode(raw).map_err(|e| e.to_string())?;
        Ok(AgentPayload {
            bucket: v.req_str("bucket")?.to_owned(),
            exec_id: v.req_str("exec")?.to_owned(),
            job_id: v.req_i64("job")? as u64,
            task: v.req_i64("task")? as u32,
            func_name: v.req_str("func")?.to_owned(),
            inline: v.get("inline").cloned(),
            // Absent on payloads from older clients: staged semantics.
            cache: v.get("cache").and_then(Value::as_bool).unwrap_or(false),
            batch: v.get("batch").and_then(Value::as_bool).unwrap_or(false),
            inline_max: v.get("ilmax").and_then(Value::as_i64).unwrap_or(0).max(0) as usize,
        })
    }

    pub(crate) fn future(&self) -> ResponseFuture {
        ResponseFuture::new(&self.bucket, &self.exec_id, self.job_id, self.task)
    }
}

/// Task input descriptors, stored as the task's `input` object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TaskSpec {
    /// A plain value (the `map()` path).
    Value(Value),
    /// A storage partition the agent must fetch and align (`map_reduce`).
    Partition(Partition),
    /// A reduce task: wait for `deps`, gather their results.
    Reduce {
        deps: Vec<ResponseFuture>,
        group: Option<String>,
        poll: Duration,
    },
    /// A shuffling map task: run the inner spec's function, then hash-
    /// partition its `(key, value)` output pairs into `reducers` COS
    /// objects (`…/shuffle-R`).
    ShuffleMap {
        inner: Box<TaskSpec>,
        reducers: usize,
    },
    /// A shuffle-reduce task: wait for the map `deps`, read every map's
    /// `shuffle-{index}` object, group pairs by key, and hand the groups to
    /// the reduce function.
    ShuffleReduce {
        deps: Vec<ResponseFuture>,
        index: usize,
        poll: Duration,
    },
}

impl TaskSpec {
    pub(crate) fn to_value(&self) -> Value {
        match self {
            TaskSpec::Value(v) => Value::map().with("kind", "value").with("value", v.clone()),
            TaskSpec::Partition(p) => Value::map()
                .with("kind", "partition")
                .with("part", p.to_value()),
            TaskSpec::Reduce { deps, group, poll } => {
                let group_v = group
                    .as_deref()
                    .map_or(Value::Null, |g| Value::Str(g.to_owned()));
                Value::map()
                    .with("kind", "reduce")
                    .with(
                        "deps",
                        Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                    )
                    .with("group", group_v)
                    .with("poll_ms", poll.as_millis() as i64)
            }
            TaskSpec::ShuffleMap { inner, reducers } => Value::map()
                .with("kind", "shuffle-map")
                .with("inner", inner.to_value())
                .with("reducers", *reducers as i64),
            TaskSpec::ShuffleReduce { deps, index, poll } => Value::map()
                .with("kind", "shuffle-reduce")
                .with(
                    "deps",
                    Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                )
                .with("index", *index as i64)
                .with("poll_ms", poll.as_millis() as i64),
        }
    }
}

/// Key of one map task's shuffle partition for reducer `r`.
pub(crate) fn shuffle_key(task_prefix: &str, r: usize) -> String {
    format!("{task_prefix}/shuffle-{r:04}")
}

/// Stable reducer assignment for a shuffle key.
pub(crate) fn shuffle_bucket_of(key: &str, reducers: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-ish fold, then mix
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (rustwren_sim::hash::mix64(h) % reducers.max(1) as u64) as usize
}

/// Builds a status object body.
pub(crate) fn status_value(state: &str, error: Option<&str>, start: f64, end: f64) -> Value {
    let mut v = Value::map()
        .with("state", state)
        .with("start", start)
        .with("end", end);
    if let Some(e) = error {
        v = v.with("error", e);
    }
    v
}

/// The agent body: runs inside every IBM-PyWren function container.
pub(crate) fn run_agent(
    cloud: &Weak<CloudInner>,
    ctx: &ActivationCtx,
    raw_payload: Bytes,
) -> Result<Bytes, ActionError> {
    let inner = cloud
        .upgrade()
        .ok_or_else(|| ActionError("cloud was torn down".into()))?;
    let cloud = SimCloud::from_inner(inner);
    let payload =
        AgentPayload::decode(&raw_payload).map_err(|e| ActionError(format!("bad payload: {e}")))?;
    let cos = ctx.cos_client();
    let fut = payload.future();
    let started = ctx.now().as_secs_f64();
    let crash_token = hash2(ctx.activation_id().0, 0xA6E7);

    chaos_crash_point(PHASE_BEFORE_RUN, crash_token);
    let outcome = execute_task(&cloud, ctx, &cos, &payload);

    let ended = ctx.now().as_secs_f64();
    // Best-effort status/result write: the client's wait() relies on it.
    match &outcome {
        Ok(result) => {
            chaos_crash_point(PHASE_AFTER_COMPUTE, crash_token);
            let encoded = result.encode();
            let mut status = status_value("done", None, started, ended);
            if payload.inline_max > 0 && encoded.len() <= payload.inline_max {
                // Small results ride inside the status object: a single PUT
                // both marks the task done and delivers the result, so no
                // `…/result` object (and no gather GET for it) ever exists.
                status = status.with("result", result.clone());
            } else {
                put_stamped(&cos, &payload.bucket, &fut.result_key(), &encoded)
                    .map_err(|e| ActionError(format!("writing result: {e}")))?;
            }
            chaos_crash_point(PHASE_AFTER_PUT, crash_token);
            put_stamped(&cos, &payload.bucket, &fut.status_key(), &status.encode())
                .map_err(|e| ActionError(format!("writing status: {e}")))?;
            Ok(Bytes::from_static(b"ok"))
        }
        Err(msg) => {
            // Under speculative execution two copies of the task race; a
            // completed `done` status must never be clobbered by a slower
            // copy's error (first successful completion wins). A status
            // that fails its stamp check is treated as not-done: wrongly
            // overwriting a corrupted-on-read `done` status is safe (the
            // stored object wins at most once), silently keeping a bad one
            // is not.
            let done_already = get_verified(&cos, &payload.bucket, &fut.status_key())
                .ok()
                .and_then(|raw| Value::decode(&raw).ok())
                .is_some_and(|s| s.get("state").and_then(Value::as_str) == Some("done"));
            if !done_already {
                put_stamped(
                    &cos,
                    &payload.bucket,
                    &fut.status_key(),
                    &status_value("error", Some(msg), started, ended).encode(),
                )
                .map_err(|e| ActionError(format!("writing status: {e}")))?;
            }
            Err(ActionError(msg.clone()))
        }
    }
}

fn execute_task(
    cloud: &SimCloud,
    ctx: &ActivationCtx,
    cos: &CosClient,
    payload: &AgentPayload,
) -> Result<Value, String> {
    let fut = payload.future();
    // Download the "pickled" function, as the real agent does — via the
    // warm-container blob cache when the client allows it.
    let _code = fetch_func_blob(ctx, cos, payload)?;
    let desc = match &payload.inline {
        // The descriptor rode inside the activation payload: no staged
        // input object exists for this task.
        Some(desc) => desc.clone(),
        None => {
            let input_raw = get_verified(
                cos,
                &payload.bucket,
                &format!("{}/input", fut.task_prefix()),
            )
            .map_err(|e| format!("fetching input: {e}"))?;
            Value::decode(&input_raw).map_err(|e| format!("decoding input: {e}"))?
        }
    };

    let func = cloud
        .registry()
        .get(&payload.func_name)
        .ok_or_else(|| format!("function `{}` not registered", payload.func_name))?;
    let task_ctx = TaskCtx::new(ctx.clone(), cloud.clone());
    let call = |input: Value| -> Result<Value, String> {
        match panic::catch_unwind(AssertUnwindSafe(|| func.call(&task_ctx, input))) {
            Ok(result) => result,
            Err(p) => Err(format!("function panicked: {}", panic_text(&p))),
        }
    };

    match desc.req_str("kind")? {
        "shuffle-map" => {
            let reducers = desc.req_i64("reducers")?.max(1) as usize;
            let inner = desc.get("inner").ok_or("missing field `inner`")?;
            let input = build_input(ctx, cos, inner, payload.batch)?;
            let output = call(input)?;
            write_shuffle_partitions(cos, payload, &fut, output, reducers)
        }
        "shuffle-reduce" => {
            let input = build_shuffle_reduce_input(ctx, cos, &desc, payload.batch)?;
            call(input)
        }
        _ => {
            let input = build_input(ctx, cos, &desc, payload.batch)?;
            call(input)
        }
    }
}

/// Fetches the job's function blob, serving warm-container repeats from the
/// [`rustwren_faas::BlobCache`] when the payload allows it. The cache holds
/// the *stamped* bytes, so every hit is re-validated against the end-to-end
/// checksum: an entry poisoned in container memory (the chaos engine's
/// `PoisonCache` fault) fails validation, is dropped, and heals via a fresh
/// COS fetch — corruption never silently reaches the user function.
fn fetch_func_blob(
    ctx: &ActivationCtx,
    cos: &CosClient,
    payload: &AgentPayload,
) -> Result<Bytes, String> {
    let key = func_key(&payload.exec_id, payload.job_id);
    if !payload.cache {
        return get_verified(cos, &payload.bucket, &key)
            .map_err(|e| format!("fetching function: {e}"));
    }
    let cache = ctx.blob_cache();
    if let Some(mut stamped) = cache.get(&key) {
        if let Some(chaos) = rustwren_sim::chaos::current() {
            let token = hash2(ctx.activation_id().0, 0xCACE);
            if let Some(poisoned) = chaos.poison_cached_blob(&payload.bucket, &key, token, &stamped)
            {
                // The fault corrupts the cached copy itself, not just this
                // read — keep the damage in the cache so the heal is real.
                stamped = Bytes::from(poisoned);
                cache.insert(&key, stamped.clone());
            }
        }
        if wire::verify_stamped(&stamped).is_ok() {
            ctx.note_blob_cache(true);
            return Ok(stamped.slice(wire::STAMP_LEN..));
        }
        cache.remove(&key);
        let fresh = get_stamped_raw(cos, &payload.bucket, &key)
            .map_err(|e| format!("refetching poisoned cached function: {e}"))?;
        cache.insert(&key, fresh.clone());
        ctx.note_blob_cache_heal();
        return Ok(fresh.slice(wire::STAMP_LEN..));
    }
    let stamped = get_stamped_raw(cos, &payload.bucket, &key)
        .map_err(|e| format!("fetching function: {e}"))?;
    cache.insert(&key, stamped.clone());
    ctx.note_blob_cache(false);
    Ok(stamped.slice(wire::STAMP_LEN..))
}

/// Hash-partitions a shuffling map task's `(key, value)` pairs into one COS
/// object per reducer; returns the summary stored as the task result.
fn write_shuffle_partitions(
    cos: &CosClient,
    payload: &AgentPayload,
    fut: &ResponseFuture,
    output: Value,
    reducers: usize,
) -> Result<Value, String> {
    let pairs = output
        .as_list()
        .ok_or("shuffle map functions must return a list of {k, v} pairs")?;
    let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); reducers];
    for pair in pairs {
        let key = pair.req_str("k")?;
        buckets[shuffle_bucket_of(key, reducers)].push(pair.clone());
    }
    let total = pairs.len();
    for (r, bucket) in buckets.into_iter().enumerate() {
        put_stamped(
            cos,
            &payload.bucket,
            &shuffle_key(&fut.task_prefix(), r),
            &Value::List(bucket).encode(),
        )
        .map_err(|e| format!("writing shuffle partition {r}: {e}"))?;
    }
    Ok(Value::map()
        .with("pairs", total as i64)
        .with("reducers", reducers as i64))
}

/// Gathers one reducer's shuffle partitions from every map task and groups
/// the pairs by key.
fn build_shuffle_reduce_input(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    let deps = desc
        .req_list("deps")?
        .iter()
        .map(ResponseFuture::from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let index = desc.req_i64("index")?.max(0) as usize;
    let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);

    // Gather each map's shuffle partition as soon as its status lands,
    // slotted by dep index; the final merge runs in dep order, so the
    // grouped output is bitwise-identical to a barrier-then-gather pass.
    let mut slots: Vec<Option<Value>> = vec![None; deps.len()];
    for_each_dep_done(ctx, cos, &deps, poll, batch, |i, d| {
        let raw = get_verified(cos, d.bucket(), &shuffle_key(&d.task_prefix(), index))
            .map_err(|e| format!("fetching shuffle partition: {e}"))?;
        slots[i] = Some(Value::decode(&raw).map_err(|e| format!("decoding shuffle data: {e}"))?);
        Ok(())
    })?;

    let mut groups: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
    for pairs in &slots {
        let pairs = pairs.as_ref().expect("every dep fetched");
        for pair in pairs.as_list().ok_or("shuffle object must hold a list")? {
            let k = pair.req_str("k")?;
            let v = pair.get("v").cloned().unwrap_or(Value::Null);
            match groups
                .entry(k.to_owned())
                .or_insert_with(|| Value::List(Vec::new()))
            {
                Value::List(items) => items.push(v),
                _ => unreachable!("groups only hold lists"),
            }
        }
    }
    Ok(Value::map()
        .with("index", index as i64)
        .with("groups", Value::Map(groups)))
}

/// Materializes the user function's input from the task descriptor,
/// merging any job-level `extra` entries into map-shaped inputs.
fn build_input(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    let input = build_input_base(ctx, cos, desc, batch)?;
    let Some(extra) = desc.get("extra").and_then(Value::as_map) else {
        return Ok(input);
    };
    match input {
        Value::Map(mut m) => {
            for (k, v) in extra {
                m.entry(k.clone()).or_insert_with(|| v.clone());
            }
            Ok(Value::Map(m))
        }
        other => Ok(Value::map()
            .with("value", other)
            .with("extra", Value::Map(extra.clone()))),
    }
}

fn build_input_base(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    match desc.req_str("kind")? {
        "value" => Ok(desc.get("value").cloned().unwrap_or(Value::Null)),
        "partition" => {
            let part = Partition::from_value(desc.get("part").ok_or("missing field `part`")?)?;
            let data = read_aligned(cos, &part).map_err(|e| e.to_string())?;
            Ok(part
                .to_value()
                .with("group", part.key.as_str())
                .with("data", Value::bytes(data.to_vec())))
        }
        "reduce" => {
            let deps = desc
                .req_list("deps")?
                .iter()
                .map(ResponseFuture::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);
            let group = desc.get("group").cloned().unwrap_or(Value::Null);

            // Gather map results in *completion order* as each status
            // lands, instead of waiting for the full barrier and then
            // downloading everything at once. Results are slotted by dep
            // index, so the reduce function still sees them in submission
            // order — only the download timing changes.
            let mut slots: Vec<Option<Value>> = vec![None; deps.len()];
            for_each_dep_done(ctx, cos, &deps, poll, batch, |i, d| {
                let status_raw = get_verified(cos, d.bucket(), &d.status_key())
                    .map_err(|e| format!("fetching dep status: {e}"))?;
                let status =
                    Value::decode(&status_raw).map_err(|e| format!("decoding dep status: {e}"))?;
                if status.req_str("state")? != "done" {
                    let msg = status
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error");
                    return Err(format!("map task {} failed: {msg}", d.label()));
                }
                slots[i] = Some(match status.get("result") {
                    // The map's result rode inside its status object.
                    Some(r) => r.clone(),
                    None => {
                        let result_raw = get_verified(cos, d.bucket(), &d.result_key())
                            .map_err(|e| format!("fetching dep result: {e}"))?;
                        Value::decode(&result_raw).map_err(|e| format!("decoding dep: {e}"))?
                    }
                });
                Ok(())
            })?;
            let results: Vec<Value> = slots
                .into_iter()
                .map(|s| s.expect("every dep fetched"))
                .collect();
            Ok(Value::map()
                .with("group", group)
                .with("results", Value::List(results)))
        }
        other => Err(format!("unknown task kind `{other}`")),
    }
}

/// "The reduce function will wait for all the partial results before
/// processing them" (§4.3) — implemented as a single batched watch: one
/// LIST per distinct job prefix per poll tick covers every dependency
/// (instead of O(deps) per-key probes), and `fetch(i, dep)` runs for each
/// dependency *as its status lands*, so downloads overlap the stragglers
/// still running rather than queueing behind a full barrier.
///
/// With `batch` off, each poll tick probes every still-pending status key
/// individually — the original data path, kept for ablation and for
/// payloads from older clients. Either way results are slotted by
/// dependency index, so the assembled input is bitwise-identical.
fn for_each_dep_done<F>(
    ctx: &ActivationCtx,
    cos: &CosClient,
    deps: &[ResponseFuture],
    poll: Duration,
    batch: bool,
    mut fetch: F,
) -> Result<(), String>
where
    F: FnMut(usize, &ResponseFuture) -> Result<(), String>,
{
    // Precompute the wanted status keys so each poll is a set intersection.
    let mut prefixes: Vec<(&str, String)> = Vec::new();
    let mut wanted: std::collections::HashMap<String, usize> =
        std::collections::HashMap::with_capacity(deps.len());
    for (i, d) in deps.iter().enumerate() {
        let p = (d.bucket(), d.job_prefix());
        if !prefixes.iter().any(|q| q.0 == p.0 && q.1 == p.1) {
            prefixes.push(p);
        }
        wanted.insert(d.status_key(), i);
    }
    let mut fetched = vec![false; deps.len()];
    let mut done = 0usize;
    loop {
        if batch {
            for (bucket, prefix) in &prefixes {
                let listed = cos
                    .list(bucket, prefix)
                    .map_err(|e| format!("listing statuses: {e}"))?;
                for meta in listed {
                    let Some(&i) = wanted.get(&meta.key) else {
                        continue;
                    };
                    if !fetched[i] {
                        fetched[i] = true;
                        fetch(i, &deps[i])?;
                        done += 1;
                    }
                }
            }
        } else {
            for (i, d) in deps.iter().enumerate() {
                if fetched[i] {
                    continue;
                }
                // One existence probe per pending dependency per tick —
                // a transient error reads as "not there yet" and is
                // retried next tick.
                if cos.get(d.bucket(), &d.status_key()).is_ok() {
                    fetched[i] = true;
                    fetch(i, d)?;
                    done += 1;
                }
            }
        }
        if done >= deps.len() {
            return Ok(());
        }
        if ctx.remaining() < poll {
            return Err(format!(
                "reducer ran out of time waiting for {}/{} map results",
                done,
                deps.len()
            ));
        }
        rustwren_sim::sleep(poll);
    }
}

fn panic_text(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_payload_roundtrip() {
        let p = AgentPayload {
            bucket: "b".into(),
            exec_id: "e1".into(),
            job_id: 4,
            task: 9,
            func_name: "tone".into(),
            inline: None,
            cache: false,
            batch: false,
            inline_max: 0,
        };
        assert_eq!(AgentPayload::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn agent_payload_carries_inline_desc_and_cache_flag() {
        let p = AgentPayload {
            bucket: "b".into(),
            exec_id: "e1".into(),
            job_id: 4,
            task: 9,
            func_name: "tone".into(),
            inline: Some(Value::map().with("kind", "value").with("value", 7i64)),
            cache: true,
            batch: true,
            inline_max: 64 * 1024,
        };
        let decoded = AgentPayload::decode(&p.encode()).expect("decodes");
        assert_eq!(decoded, p);
        assert_eq!(
            decoded
                .inline
                .as_ref()
                .and_then(|d| d.get("kind"))
                .and_then(Value::as_str),
            Some("value")
        );
        assert!(decoded.cache);
    }

    #[test]
    fn agent_payload_without_cache_key_defaults_to_staged_semantics() {
        // A payload encoded before the data-path fields existed still
        // decodes — and conservatively disables both optimisations.
        let old = Value::map()
            .with("bucket", "b")
            .with("exec", "e1")
            .with("job", 4i64)
            .with("task", 9i64)
            .with("func", "tone")
            .encode();
        let decoded = AgentPayload::decode(&old).expect("decodes");
        assert_eq!(decoded.inline, None);
        assert!(!decoded.cache);
    }

    #[test]
    fn agent_payload_decode_rejects_garbage() {
        assert!(AgentPayload::decode(b"nonsense").is_err());
        assert!(AgentPayload::decode(&Value::map().with("bucket", "b").encode()).is_err());
    }

    #[test]
    fn task_specs_encode_their_kind() {
        let v = TaskSpec::Value(Value::Int(5)).to_value();
        assert_eq!(v.req_str("kind"), Ok("value"));
        let p = TaskSpec::Partition(Partition {
            bucket: "b".into(),
            key: "k".into(),
            start: 0,
            end: 10,
            index: 0,
        })
        .to_value();
        assert_eq!(p.req_str("kind"), Ok("partition"));
        let r = TaskSpec::Reduce {
            deps: vec![ResponseFuture::new("b", "e", 1, 0)],
            group: Some("nyc".into()),
            poll: Duration::from_millis(500),
        }
        .to_value();
        assert_eq!(r.req_str("kind"), Ok("reduce"));
        assert_eq!(r.req_i64("poll_ms"), Ok(500));
        assert_eq!(r.get("group").and_then(Value::as_str), Some("nyc"));
    }

    #[test]
    fn status_value_carries_error() {
        let s = status_value("error", Some("boom"), 1.0, 2.0);
        assert_eq!(s.req_str("state"), Ok("error"));
        assert_eq!(s.get("error").and_then(Value::as_str), Some("boom"));
        let ok = status_value("done", None, 1.0, 2.0);
        assert!(ok.get("error").is_none());
    }

    #[test]
    fn func_key_layout() {
        assert_eq!(func_key("e2", 7), "jobs/e2/7/func");
    }
}
