//! Job staging and the in-cloud function agent.
//!
//! A *job* is one `call_async`/`map`/`map_reduce` submission. The client
//! stages into COS, per job: one **function blob** (the modeled serialized
//! user code) and one **input object** per task; it then invokes the agent
//! action once per task with a small descriptor payload. The agent — the
//! code that runs inside every IBM-PyWren container — downloads the blob
//! and input, executes the user function from the registry, and writes a
//! **result** and a **status** object back to COS, which the client polls.
//!
//! COS layout (per executor `e`, job `j`, task `n`):
//!
//! ```text
//! jobs/e/j/func            the function blob
//! jobs/e/j/t00000/input    task input descriptor
//! jobs/e/j/t00000/result   encoded result value (on success)
//! jobs/e/j/t00000/status   {"state": "done"|"error", timings…}
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::Weak;
use std::time::Duration;

use bytes::Bytes;
use rustwren_faas::{ActionError, ActivationCtx};
use rustwren_sim::hash::hash2;
use rustwren_store::CosClient;

use crate::cloud::{CloudInner, SimCloud};
use crate::error::PywrenError;
use crate::future::ResponseFuture;
use crate::partition::{read_aligned, Partition};
use crate::shuffle::{
    bitmap_get, bitmap_set, merge_runs, segment_key, shuffle_key, sort_run, ExchangeMode,
    KeyedPair, Partitioner, ShufflePlane,
};
use crate::task::TaskCtx;
use crate::wire::{self, Value};

/// Chaos crash phase: the agent has decoded its payload but not yet run the
/// user function (models a container dying mid-download).
pub const PHASE_BEFORE_RUN: &str = "agent:before-run";
/// Chaos crash phase: the user function finished but the result was not yet
/// written to COS.
pub const PHASE_AFTER_COMPUTE: &str = "agent:after-compute";
/// Chaos crash phase: the result object was written but the `done` status
/// was not — the client sees a task with a result and no status.
pub const PHASE_AFTER_PUT: &str = "agent:after-put";
/// Chaos crash phase: a remote invoker activation dies before spawning its
/// task group (models an invoker kill — its tasks never get activations).
pub const PHASE_INVOKER: &str = "invoker";

/// Panics if the installed chaos engine schedules a crash for `phase` now.
/// `token` individualizes the draw (the activation id, typically).
pub(crate) fn chaos_crash_point(phase: &str, token: u64) {
    if let Some(chaos) = rustwren_sim::chaos::current() {
        if chaos.should_crash(phase, token) {
            // lint: allow(L009) — killing the activation is the point of an
            // injected chaos crash; recovery paths are what the test exercises
            panic!("chaos: injected crash at {phase}");
        }
    }
}

/// Writes a staged object with the end-to-end checksum stamp. Every staged
/// write in the system (func, input, status, result, shuffle) goes through
/// here, so readers can always demand a valid stamp.
pub(crate) fn put_stamped(
    cos: &CosClient,
    bucket: &str,
    key: &str,
    payload: &[u8],
) -> Result<(), rustwren_store::StoreError> {
    cos.put(bucket, key, wire::stamp(payload)).map(|_| ())
}

/// Reads a staged object and verifies its checksum stamp, returning the
/// *whole stamped representation* (magic + checksum + payload) — the form
/// the container-local blob cache stores, so cache hits can be re-validated
/// against the same stamp. Surfaces failure as [`PywrenError::Integrity`].
pub(crate) fn get_stamped_raw(
    cos: &CosClient,
    bucket: &str,
    key: &str,
) -> crate::error::Result<Bytes> {
    // A stamp failure means the *read* was corrupted — the stored object is
    // intact — so a couple of immediate re-fetches usually heal it without
    // burning a whole task attempt.
    let mut last = None;
    for _ in 0..3 {
        let raw = cos.get(bucket, key).map_err(PywrenError::Storage)?;
        match wire::verify_stamped(&raw) {
            Ok(_) => return Ok(raw),
            Err(e) => {
                last = Some(PywrenError::Integrity {
                    key: format!("{bucket}/{key}"),
                    detail: e.to_string(),
                });
            }
        }
    }
    Err(last.unwrap_or_else(|| PywrenError::Integrity {
        key: format!("{bucket}/{key}"),
        detail: "no read attempts were made".to_owned(),
    }))
}

/// Reads a staged object and verifies its checksum stamp, surfacing a
/// failure as the typed [`PywrenError::Integrity`].
pub(crate) fn get_verified(
    cos: &CosClient,
    bucket: &str,
    key: &str,
) -> crate::error::Result<Bytes> {
    get_stamped_raw(cos, bucket, key).map(|raw| raw.slice(wire::STAMP_LEN..))
}

/// Key of a job's function blob.
pub(crate) fn func_key(exec_id: &str, job_id: u64) -> String {
    format!("jobs/{exec_id}/{job_id}/func")
}

/// The small payload carried by each agent invocation. With the inline
/// data path, the task descriptor itself may ride along (`inline`),
/// eliminating the staged input object and its PUT/GET round trip.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AgentPayload {
    pub bucket: String,
    pub exec_id: String,
    pub job_id: u64,
    pub task: u32,
    pub func_name: String,
    /// Inlined task descriptor: when set, the agent uses this instead of
    /// fetching `…/input` from COS (which is never staged for such tasks).
    pub inline: Option<Value>,
    /// Whether the agent may serve the function blob from the
    /// container-local cache instead of re-fetching it from COS.
    pub cache: bool,
    /// Whether reducers watch dependencies with one batched LIST per poll
    /// tick (instead of the legacy O(deps) per-key probes).
    pub batch: bool,
    /// Inline-result threshold: results whose encoding is at most this many
    /// bytes ride inside the status object (one PUT completes the task and
    /// delivers the result). `0` always stages the result separately.
    pub inline_max: usize,
}

impl AgentPayload {
    pub(crate) fn encode(&self) -> Bytes {
        let mut v = Value::map()
            .with("bucket", self.bucket.as_str())
            .with("exec", self.exec_id.as_str())
            .with("job", self.job_id as i64)
            .with("task", i64::from(self.task))
            .with("func", self.func_name.as_str())
            .with("cache", self.cache)
            .with("batch", self.batch)
            .with("ilmax", self.inline_max as i64);
        if let Some(inline) = &self.inline {
            v = v.with("inline", inline.clone());
        }
        v.encode()
    }

    pub(crate) fn decode(raw: &[u8]) -> Result<AgentPayload, String> {
        let v = Value::decode(raw).map_err(|e| e.to_string())?;
        Ok(AgentPayload {
            bucket: v.req_str("bucket")?.to_owned(),
            exec_id: v.req_str("exec")?.to_owned(),
            job_id: v.req_i64("job")? as u64,
            task: v.req_i64("task")? as u32,
            func_name: v.req_str("func")?.to_owned(),
            inline: v.get("inline").cloned(),
            // Absent on payloads from older clients: staged semantics.
            cache: v.get("cache").and_then(Value::as_bool).unwrap_or(false),
            batch: v.get("batch").and_then(Value::as_bool).unwrap_or(false),
            inline_max: v.get("ilmax").and_then(Value::as_i64).unwrap_or(0).max(0) as usize,
        })
    }

    pub(crate) fn future(&self) -> ResponseFuture {
        ResponseFuture::new(&self.bucket, &self.exec_id, self.job_id, self.task)
    }
}

/// Task input descriptors, stored as the task's `input` object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TaskSpec {
    /// A plain value (the `map()` path).
    Value(Value),
    /// A storage partition the agent must fetch and align (`map_reduce`).
    Partition(Partition),
    /// A reduce task: wait for `deps`, gather their results.
    Reduce {
        deps: Vec<ResponseFuture>,
        group: Option<String>,
        poll: Duration,
    },
    /// A shuffling map task: run the inner spec's function, then partition
    /// its `(key, value)` output pairs across `reducers` partitions on the
    /// chosen [`ShufflePlane`] and [`ExchangeMode`].
    ShuffleMap {
        inner: Box<TaskSpec>,
        reducers: usize,
        plane: ShufflePlane,
        exchange: ExchangeMode,
        partitioner: Partitioner,
        /// Optional registered combiner function applied map-side to each
        /// sorted key group before the partition is spilled.
        combiner: Option<String>,
    },
    /// A shuffle-reduce task: wait for the map `deps`, fetch this reducer's
    /// partition from every map (via each map's status manifest), merge the
    /// sorted runs under the `fanin` budget, group pairs by key, and hand
    /// the groups to the reduce function.
    ShuffleReduce {
        deps: Vec<ResponseFuture>,
        index: usize,
        poll: Duration,
        reducers: usize,
        plane: ShufflePlane,
        exchange: ExchangeMode,
        fanin: usize,
    },
}

impl TaskSpec {
    pub(crate) fn to_value(&self) -> Value {
        match self {
            TaskSpec::Value(v) => Value::map().with("kind", "value").with("value", v.clone()),
            TaskSpec::Partition(p) => Value::map()
                .with("kind", "partition")
                .with("part", p.to_value()),
            TaskSpec::Reduce { deps, group, poll } => {
                let group_v = group
                    .as_deref()
                    .map_or(Value::Null, |g| Value::Str(g.to_owned()));
                Value::map()
                    .with("kind", "reduce")
                    .with(
                        "deps",
                        Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                    )
                    .with("group", group_v)
                    .with("poll_ms", poll.as_millis() as i64)
            }
            TaskSpec::ShuffleMap {
                inner,
                reducers,
                plane,
                exchange,
                partitioner,
                combiner,
            } => {
                let mut v = Value::map()
                    .with("kind", "shuffle-map")
                    .with("inner", inner.to_value())
                    .with("reducers", *reducers as i64)
                    .with("plane", plane.as_str())
                    .with("exch", exchange.as_str())
                    .with("part", partitioner.to_value());
                if let Some(c) = combiner {
                    v = v.with("comb", c.as_str());
                }
                v
            }
            TaskSpec::ShuffleReduce {
                deps,
                index,
                poll,
                reducers,
                plane,
                exchange,
                fanin,
            } => {
                let v = Value::map()
                    .with("kind", "shuffle-reduce")
                    .with("index", *index as i64)
                    .with("poll_ms", poll.as_millis() as i64)
                    .with("reducers", *reducers as i64)
                    .with("plane", plane.as_str())
                    .with("exch", exchange.as_str())
                    .with("fanin", *fanin as i64);
                // Shuffle deps are one whole map job: ship them as a compact
                // (bucket, exec, job, count) reference instead of M full
                // futures, so the descriptor stays O(1) in the map fan-out
                // (an M-future list once made big reduce descriptors invisible
                // to W003's payload sizing).
                match compact_shuffle_deps(deps) {
                    Some(depr) => v.with("depr", depr),
                    None => v.with(
                        "deps",
                        Value::List(deps.iter().map(ResponseFuture::to_value).collect()),
                    ),
                }
            }
        }
    }
}

/// Encodes shuffle-reduce deps as a compact whole-job reference when they
/// are exactly tasks `0..n` of a single job (what `map_shuffle_reduce`
/// always produces).
fn compact_shuffle_deps(deps: &[ResponseFuture]) -> Option<Value> {
    let first = deps.first()?;
    deps.iter()
        .enumerate()
        .all(|(i, d)| {
            d.bucket() == first.bucket()
                && d.exec_id() == first.exec_id()
                && d.job_id() == first.job_id()
                && d.task() as usize == i
        })
        .then(|| {
            Value::map()
                .with("bucket", first.bucket())
                .with("exec", first.exec_id())
                .with("job", first.job_id() as i64)
                .with("n", deps.len() as i64)
        })
}

/// Decodes shuffle-reduce deps from either the compact whole-job reference
/// (`depr`) or the legacy full futures list (`deps`).
fn decode_shuffle_deps(desc: &Value) -> Result<Vec<ResponseFuture>, String> {
    if let Some(d) = desc.get("depr") {
        let bucket = d.req_str("bucket")?;
        let exec = d.req_str("exec")?;
        let job = d.req_i64("job")? as u64;
        let n = d.req_i64("n")?.max(0) as u32;
        return Ok((0..n)
            .map(|t| ResponseFuture::new(bucket, exec, job, t))
            .collect());
    }
    desc.req_list("deps")?
        .iter()
        .map(ResponseFuture::from_value)
        .collect()
}

/// Builds a status object body.
pub(crate) fn status_value(state: &str, error: Option<&str>, start: f64, end: f64) -> Value {
    let mut v = Value::map()
        .with("state", state)
        .with("start", start)
        .with("end", end);
    if let Some(e) = error {
        v = v.with("error", e);
    }
    v
}

/// The agent body: runs inside every IBM-PyWren function container.
// lint: entry(hot_path)
// lint: entry(sim_path)
pub(crate) fn run_agent(
    cloud: &Weak<CloudInner>,
    ctx: &ActivationCtx,
    raw_payload: Bytes,
) -> Result<Bytes, ActionError> {
    let inner = cloud
        .upgrade()
        .ok_or_else(|| ActionError("cloud was torn down".into()))?;
    let cloud = SimCloud::from_inner(inner);
    let payload =
        AgentPayload::decode(&raw_payload).map_err(|e| ActionError(format!("bad payload: {e}")))?;
    let cos = ctx.cos_client();
    let fut = payload.future();
    let started = ctx.now().as_secs_f64();
    let crash_token = hash2(ctx.activation_id().0, 0xA6E7);

    chaos_crash_point(PHASE_BEFORE_RUN, crash_token);
    let outcome = execute_task(&cloud, ctx, &cos, &payload);

    let ended = ctx.now().as_secs_f64();
    // Best-effort status/result write: the client's wait() relies on it.
    match &outcome {
        Ok((result, shuf)) => {
            chaos_crash_point(PHASE_AFTER_COMPUTE, crash_token);
            let encoded = result.encode();
            let mut status = status_value("done", None, started, ended);
            if let Some(manifest) = shuf {
                // A shuffle map's partition manifest always rides in the
                // status object: reducers need it to locate (or rule out)
                // their partition without probing COS.
                status = status.with("shuf", manifest.clone());
            }
            if payload.inline_max > 0 && encoded.len() <= payload.inline_max {
                // Small results ride inside the status object: a single PUT
                // both marks the task done and delivers the result, so no
                // `…/result` object (and no gather GET for it) ever exists.
                status = status.with("result", result.clone());
            } else {
                put_stamped(&cos, &payload.bucket, &fut.result_key(), &encoded)
                    .map_err(|e| ActionError(format!("writing result: {e}")))?;
            }
            chaos_crash_point(PHASE_AFTER_PUT, crash_token);
            put_stamped(&cos, &payload.bucket, &fut.status_key(), &status.encode())
                .map_err(|e| ActionError(format!("writing status: {e}")))?;
            Ok(Bytes::from_static(b"ok"))
        }
        Err(msg) => {
            // Under speculative execution two copies of the task race; a
            // completed `done` status must never be clobbered by a slower
            // copy's error (first successful completion wins). A status
            // that fails its stamp check is treated as not-done: wrongly
            // overwriting a corrupted-on-read `done` status is safe (the
            // stored object wins at most once), silently keeping a bad one
            // is not.
            let done_already = get_verified(&cos, &payload.bucket, &fut.status_key())
                .ok()
                .and_then(|raw| Value::decode(&raw).ok())
                .is_some_and(|s| s.get("state").and_then(Value::as_str) == Some("done"));
            if !done_already {
                put_stamped(
                    &cos,
                    &payload.bucket,
                    &fut.status_key(),
                    &status_value("error", Some(msg), started, ended).encode(),
                )
                .map_err(|e| ActionError(format!("writing status: {e}")))?;
            }
            Err(ActionError(msg.clone()))
        }
    }
}

/// Runs the task described by `payload`, returning its result value plus —
/// for shuffle maps — the partition manifest to embed in the status object.
fn execute_task(
    cloud: &SimCloud,
    ctx: &ActivationCtx,
    cos: &CosClient,
    payload: &AgentPayload,
) -> Result<(Value, Option<Value>), String> {
    let fut = payload.future();
    // Download the "pickled" function, as the real agent does — via the
    // warm-container blob cache when the client allows it.
    let _code = fetch_func_blob(ctx, cos, payload)?;
    let desc = match &payload.inline {
        // The descriptor rode inside the activation payload: no staged
        // input object exists for this task.
        Some(desc) => desc.clone(),
        None => {
            let input_raw = get_verified(
                cos,
                &payload.bucket,
                &format!("{}/input", fut.task_prefix()),
            )
            .map_err(|e| format!("fetching input: {e}"))?;
            Value::decode(&input_raw).map_err(|e| format!("decoding input: {e}"))?
        }
    };

    let func = cloud
        .registry()
        .get(&payload.func_name)
        .ok_or_else(|| format!("function `{}` not registered", payload.func_name))?;
    let task_ctx = TaskCtx::new(ctx.clone(), cloud.clone());
    let call = |input: Value| -> Result<Value, String> {
        match panic::catch_unwind(AssertUnwindSafe(|| func.call(&task_ctx, input))) {
            Ok(result) => result,
            Err(p) => Err(format!("function panicked: {}", panic_text(&p))),
        }
    };

    match desc.req_str("kind")? {
        "shuffle-map" => {
            let params = ShuffleMapParams::from_desc(&desc)?;
            let inner = desc.get("inner").ok_or("missing field `inner`")?;
            let input = build_input(ctx, cos, inner, payload.batch)?;
            let output = call(input)?;
            write_shuffle_output(cloud, cos, payload, &fut, &task_ctx, output, &params)
                .map(|(result, manifest)| (result, Some(manifest)))
        }
        "shuffle-reduce" => {
            let input = build_shuffle_reduce_input(cloud, ctx, cos, &desc, payload.batch)?;
            call(input).map(|r| (r, None))
        }
        _ => {
            let input = build_input(ctx, cos, &desc, payload.batch)?;
            call(input).map(|r| (r, None))
        }
    }
}

/// Decoded shuffle-map descriptor fields (partitioning policy).
struct ShuffleMapParams {
    reducers: usize,
    plane: ShufflePlane,
    exchange: ExchangeMode,
    partitioner: Partitioner,
    combiner: Option<String>,
}

impl ShuffleMapParams {
    fn from_desc(desc: &Value) -> Result<ShuffleMapParams, String> {
        Ok(ShuffleMapParams {
            reducers: desc.req_i64("reducers")?.max(1) as usize,
            plane: ShufflePlane::from_wire(desc.get("plane").and_then(Value::as_str))?,
            exchange: ExchangeMode::from_wire(desc.get("exch").and_then(Value::as_str))?,
            partitioner: Partitioner::from_value(desc.get("part"))?,
            combiner: desc.get("comb").and_then(Value::as_str).map(str::to_owned),
        })
    }
}

/// Fetches the job's function blob, serving warm-container repeats from the
/// [`rustwren_faas::BlobCache`] when the payload allows it. The cache holds
/// the *stamped* bytes, so every hit is re-validated against the end-to-end
/// checksum: an entry poisoned in container memory (the chaos engine's
/// `PoisonCache` fault) fails validation, is dropped, and heals via a fresh
/// COS fetch — corruption never silently reaches the user function.
fn fetch_func_blob(
    ctx: &ActivationCtx,
    cos: &CosClient,
    payload: &AgentPayload,
) -> Result<Bytes, String> {
    let key = func_key(&payload.exec_id, payload.job_id);
    if !payload.cache {
        return get_verified(cos, &payload.bucket, &key)
            .map_err(|e| format!("fetching function: {e}"));
    }
    let cache = ctx.blob_cache();
    if let Some(mut stamped) = cache.get(&key) {
        if let Some(chaos) = rustwren_sim::chaos::current() {
            let token = hash2(ctx.activation_id().0, 0xCACE);
            if let Some(poisoned) = chaos.poison_cached_blob(&payload.bucket, &key, token, &stamped)
            {
                // The fault corrupts the cached copy itself, not just this
                // read — keep the damage in the cache so the heal is real.
                stamped = Bytes::from(poisoned);
                cache.insert(&key, stamped.clone());
            }
        }
        if wire::verify_stamped(&stamped).is_ok() {
            ctx.note_blob_cache(true);
            return Ok(stamped.slice(wire::STAMP_LEN..));
        }
        cache.remove(&key);
        let fresh = get_stamped_raw(cos, &payload.bucket, &key)
            .map_err(|e| format!("refetching poisoned cached function: {e}"))?;
        cache.insert(&key, fresh.clone());
        ctx.note_blob_cache_heal();
        return Ok(fresh.slice(wire::STAMP_LEN..));
    }
    let stamped = get_stamped_raw(cos, &payload.bucket, &key)
        .map_err(|e| format!("fetching function: {e}"))?;
    cache.insert(&key, stamped.clone());
    ctx.note_blob_cache(false);
    Ok(stamped.slice(wire::STAMP_LEN..))
}

/// Partitions a shuffling map task's `(key, value)` pairs across the
/// reducers on the configured plane and exchange; returns the summary
/// stored as the task result plus the partition manifest embedded in the
/// task's status object (`"shuf"`).
///
/// Empty partitions are never written — the manifest records them as
/// absent, so a reducer can distinguish "this map produced nothing for me"
/// (run on) from "this map's data went missing" (typed loss error) under
/// chaos. On the whole-object plane the record is a presence bitmap; on the
/// partitioned plane the per-reducer entry is `Null`. The relay exchange
/// always publishes every channel (publishes are datacenter-cheap and a
/// present-but-empty channel needs no COS diagnosis round trip).
fn write_shuffle_output(
    cloud: &SimCloud,
    cos: &CosClient,
    payload: &AgentPayload,
    fut: &ResponseFuture,
    task_ctx: &TaskCtx,
    output: Value,
    params: &ShuffleMapParams,
) -> Result<(Value, Value), String> {
    let pairs = output
        .as_list()
        .ok_or("shuffle map functions must return a list of {k, v} pairs")?;
    let reducers = params.reducers;
    let mut buckets: Vec<Vec<KeyedPair>> = vec![Vec::new(); reducers];
    for pair in pairs {
        let key = pair.req_str("k")?;
        // lint: allow(L009) — bucket_of's contract is `< reducers`, which is
        // exactly the buckets length (checked by Partitioner::validate)
        buckets[params.partitioner.bucket_of(key, reducers)].push((key.to_owned(), pair.clone()));
    }
    let total = pairs.len();
    let prefix = fut.task_prefix();
    let summary = |manifest: Value| {
        (
            Value::map()
                .with("pairs", total as i64)
                .with("reducers", reducers as i64),
            manifest,
        )
    };

    if params.plane == ShufflePlane::WholeObject {
        // Legacy layout, minus the O(M×R) empty-partition PUTs: buckets keep
        // emission order (no sort), non-empty ones go out whole, and the
        // bitmap records which exist.
        let mut bits = vec![0u8; reducers.div_ceil(8)];
        for (r, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            bitmap_set(&mut bits, r);
            let list = Value::List(bucket.into_iter().map(|(_, p)| p).collect());
            put_stamped(
                cos,
                &payload.bucket,
                &shuffle_key(&prefix, r, reducers),
                &list.encode(),
            )
            .map_err(|e| format!("writing shuffle partition {r}: {e}"))?;
        }
        return Ok(summary(
            Value::map()
                .with("n", reducers as i64)
                .with("k", "whole")
                .with("w", Value::bytes(bits)),
        ));
    }

    // Partitioned plane: sort each spill (so reducers merge instead of
    // re-sorting), optionally fold each key group through the combiner.
    let combiner = match &params.combiner {
        None => None,
        Some(name) => Some((
            name.as_str(),
            cloud
                .registry()
                .get(name)
                .ok_or_else(|| format!("combiner `{name}` is not registered"))?,
        )),
    };
    for bucket in &mut buckets {
        sort_run(bucket);
        if let Some((name, func)) = &combiner {
            *bucket = combine_run(std::mem::take(bucket), name, func.as_ref(), task_ctx)?;
        }
    }

    if params.exchange == ExchangeMode::Relay {
        // Direct exchange: publish every channel (empty included) to the
        // relay tier. No COS data-plane operation at all.
        for (r, bucket) in buckets.into_iter().enumerate() {
            let list = Value::List(bucket.into_iter().map(|(_, p)| p).collect());
            cloud.relay().put(
                &shuffle_key(&prefix, r, reducers),
                wire::stamp(&list.encode()),
            );
        }
        return Ok(summary(
            Value::map().with("n", reducers as i64).with("k", "relay"),
        ));
    }

    // COS exchange: one *segment* object per map. Tiny slices ride inline in
    // the manifest itself (the status PUT delivers them for free, like
    // inline results); bigger ones are individually stamped and concatenated
    // so each reducer range-GETs exactly its slice.
    let mut parts: Vec<Value> = Vec::with_capacity(reducers);
    let mut segment: Vec<u8> = Vec::new();
    for bucket in buckets {
        if bucket.is_empty() {
            parts.push(Value::Null);
            continue;
        }
        let list = Value::List(bucket.into_iter().map(|(_, p)| p).collect());
        let encoded = list.encode();
        if payload.inline_max > 0 && encoded.len() <= payload.inline_max {
            parts.push(Value::map().with("d", list));
        } else {
            let stamped = wire::stamp(&encoded);
            let off = segment.len();
            segment.extend_from_slice(&stamped);
            parts.push(
                Value::map()
                    .with("o", off as i64)
                    .with("l", stamped.len() as i64),
            );
        }
    }
    if !segment.is_empty() {
        // Slices carry their own stamps (range reads can't verify a whole-
        // object stamp), so the segment is PUT raw.
        cos.put(&payload.bucket, &segment_key(&prefix), Bytes::from(segment))
            .map_err(|e| format!("writing shuffle segment: {e}"))?;
    }
    Ok(summary(
        Value::map()
            .with("n", reducers as i64)
            .with("k", "seg")
            .with("parts", Value::List(parts)),
    ))
}

/// Folds each group of consecutive equal keys in a sorted run through the
/// map-side combiner, yielding one `{k, v}` pair per distinct key. The
/// combiner sees `{"k": key, "vs": [values…]}` and returns the combined
/// value (singletons included, so its semantics don't depend on luck of
/// partition sizes).
fn combine_run(
    run: Vec<KeyedPair>,
    name: &str,
    func: &dyn crate::registry::RemoteFn,
    task_ctx: &TaskCtx,
) -> Result<Vec<KeyedPair>, String> {
    let mut out: Vec<KeyedPair> = Vec::new();
    let mut i = 0;
    while i < run.len() {
        let mut j = i + 1;
        // lint: allow(L009) — i < run.len() from the loop condition, j is
        // bounds-checked before dereference
        while j < run.len() && run[j].0 == run[i].0 {
            j += 1;
        }
        // lint: allow(L009) — same loop invariant
        let key = run[i].0.clone();
        // lint: allow(L009) — i <= j <= run.len() by construction
        let vs: Vec<Value> = run[i..j]
            .iter()
            .map(|(_, p)| p.get("v").cloned().unwrap_or(Value::Null))
            .collect();
        let input = Value::map()
            .with("k", key.as_str())
            .with("vs", Value::List(vs));
        let combined = match panic::catch_unwind(AssertUnwindSafe(|| func.call(task_ctx, input))) {
            Ok(r) => r.map_err(|e| format!("combiner `{name}` failed for key `{key}`: {e}"))?,
            Err(p) => {
                return Err(format!(
                    "combiner `{name}` panicked for key `{key}`: {}",
                    panic_text(&p)
                ))
            }
        };
        let pair = Value::map().with("k", key.as_str()).with("v", combined);
        out.push((key, pair));
        i = j;
    }
    Ok(out)
}

/// Gathers one reducer's shuffle partitions from every map task, merges the
/// runs, and groups the pairs by key.
fn build_shuffle_reduce_input(
    cloud: &SimCloud,
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    let deps = decode_shuffle_deps(desc)?;
    let index = desc.req_i64("index")?.max(0) as usize;
    let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);
    // Absent fields mean a payload from an older client: whole-object plane
    // over COS, and a reducer count whose pad matches the legacy 4 digits.
    let reducers = desc
        .get("reducers")
        .and_then(Value::as_i64)
        .unwrap_or(1)
        .max(1) as usize;
    let plane = ShufflePlane::from_wire(desc.get("plane").and_then(Value::as_str))?;
    let exchange = ExchangeMode::from_wire(desc.get("exch").and_then(Value::as_str))?;
    let fanin = desc
        .get("fanin")
        .and_then(Value::as_i64)
        .unwrap_or(16)
        .max(2) as usize;

    // Gather each map's partition as soon as its status lands, slotted by
    // dep index; runs are then merged in dep order, so the grouped output is
    // bitwise-identical to a barrier-then-gather pass.
    let mut slots: Vec<Option<Vec<KeyedPair>>> = vec![None; deps.len()];
    for_each_dep_done(ctx, cos, &deps, poll, batch, |i, d| {
        // lint: allow(L009) — for_each_dep_done yields i < deps.len() == slots.len()
        slots[i] = Some(fetch_shuffle_run(cloud, cos, d, index, reducers, exchange)?);
        Ok(())
    })?;

    let mut runs: Vec<Vec<KeyedPair>> = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        // An unfilled slot is an internal protocol bug; surface it as a
        // typed task error (retry/speculation can heal it) instead of
        // panicking the agent.
        runs.push(slot.ok_or_else(|| {
            format!(
                "internal: shuffle dependency {i} of {} was never fetched",
                deps.len()
            )
        })?);
    }

    let merged: Vec<KeyedPair> = match plane {
        // Partitioned runs arrive sorted: k-way merge under the bounded
        // fan-in budget instead of holding and re-scanning everything.
        ShufflePlane::Partitioned => merge_runs(runs, fanin).0,
        // Whole-object runs are unsorted: concatenate in dep order, exactly
        // like the legacy gather.
        ShufflePlane::WholeObject => runs.into_iter().flatten().collect(),
    };

    let mut groups: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
    for (k, pair) in &merged {
        let v = pair.get("v").cloned().unwrap_or(Value::Null);
        match groups
            .entry(k.clone())
            .or_insert_with(|| Value::List(Vec::new()))
        {
            Value::List(items) => items.push(v),
            // lint: allow(L009) — entry is inserted as a list two lines up
            _ => unreachable!("groups only hold lists"),
        }
    }
    Ok(Value::map()
        .with("index", index as i64)
        .with("groups", Value::Map(groups)))
}

/// Fetches reducer `index`'s partition run from one finished map task,
/// using the map's status manifest (authoritative over the reducer's own
/// decoded plane) to tell elided-empty partitions apart from lost data.
fn fetch_shuffle_run(
    cloud: &SimCloud,
    cos: &CosClient,
    d: &ResponseFuture,
    index: usize,
    reducers: usize,
    exchange: ExchangeMode,
) -> Result<Vec<KeyedPair>, String> {
    let prefix = d.task_prefix();
    let channel = shuffle_key(&prefix, index, reducers);

    if exchange == ExchangeMode::Relay {
        // Happy path: zero COS operations — maps publish every channel, so
        // the relay read alone settles it. Only a miss (map failed, or data
        // gone) costs one status GET to diagnose which.
        return match cloud.relay().get(&channel) {
            Ok(stamped) => {
                let raw = wire::verify_stamped(&stamped).map_err(|e| {
                    format!("integrity failure reading relay channel {channel}: {e}")
                })?;
                keyed_pairs_of_raw(raw)
            }
            Err(_) => {
                let status = fetch_dep_status(cos, d)?;
                Err(match map_error_of(&status) {
                    Some(msg) => format!("map task {} failed: {msg}", d.label()),
                    None => format!(
                        "shuffle data of map task {} lost from the relay tier",
                        d.label()
                    ),
                })
            }
        };
    }

    let status = fetch_dep_status(cos, d)?;
    if let Some(msg) = map_error_of(&status) {
        return Err(format!("map task {} failed: {msg}", d.label()));
    }
    let Some(manifest) = status.get("shuf") else {
        // Pre-manifest map payload: every partition was written, fetch it
        // directly (the legacy protocol).
        let raw = get_verified(cos, d.bucket(), &channel)
            .map_err(|e| format!("fetching shuffle partition: {e}"))?;
        return keyed_pairs_of_raw(&raw);
    };
    match manifest.req_str("k")? {
        "whole" => {
            let bits = manifest
                .get("w")
                .and_then(Value::as_bytes)
                .ok_or("whole-object manifest missing its bitmap")?;
            if !bitmap_get(bits, index) {
                // Declared absent: this map produced nothing for us.
                return Ok(Vec::new());
            }
            match get_verified(cos, d.bucket(), &channel) {
                Ok(raw) => keyed_pairs_of_raw(&raw),
                Err(PywrenError::Storage(rustwren_store::StoreError::NoSuchKey { .. })) => {
                    Err(format!(
                        "shuffle partition {index} of map task {} was written but is now \
                         missing (lost)",
                        d.label()
                    ))
                }
                Err(e) => Err(format!("fetching shuffle partition: {e}")),
            }
        }
        "seg" => {
            let parts = manifest.req_list("parts")?;
            let entry = parts
                .get(index)
                .ok_or_else(|| format!("manifest has no entry for partition {index}"))?;
            match entry {
                Value::Null => Ok(Vec::new()),
                e => {
                    if let Some(inline) = e.get("d") {
                        return keyed_pairs_of(inline);
                    }
                    let off = e.req_i64("o")?.max(0) as u64;
                    let len = e.req_i64("l")?.max(0) as u64;
                    let raw = get_slice_verified(cos, d.bucket(), &segment_key(&prefix), off, len)
                        .map_err(|e| format!("map task {}: {e}", d.label()))?;
                    keyed_pairs_of_raw(&raw)
                }
            }
        }
        "relay" => Err(format!(
            "map task {} exchanged its partitions via the relay tier, but this reducer \
             was told to use COS",
            d.label()
        )),
        other => Err(format!("unknown shuffle manifest kind `{other}`")),
    }
}

/// Range-reads one stamped slice out of a shuffle segment object and
/// verifies its checksum (re-fetching a couple of times on a bad read, like
/// [`get_stamped_raw`]). A missing segment is a typed loss error — the
/// manifest said the slice exists.
fn get_slice_verified(
    cos: &CosClient,
    bucket: &str,
    key: &str,
    off: u64,
    len: u64,
) -> Result<Bytes, String> {
    let mut last = None;
    for _ in 0..3 {
        let raw = match cos.get_range(bucket, key, off, off + len) {
            Ok(raw) => raw,
            Err(e @ rustwren_store::StoreError::NoSuchKey { .. }) => {
                return Err(format!(
                    "shuffle segment {bucket}/{key} was written but is now missing (lost): {e}"
                ));
            }
            Err(e) => return Err(format!("fetching shuffle slice: {e}")),
        };
        match wire::verify_stamped(&raw) {
            Ok(_) => return Ok(raw.slice(wire::STAMP_LEN..)),
            Err(e) => {
                last = Some(format!(
                    "integrity failure reading shuffle slice {bucket}/{key}@{off}: {e}"
                ));
            }
        }
    }
    Err(last.unwrap_or_else(|| {
        format!("shuffle slice {bucket}/{key}@{off}: no read attempts were made")
    }))
}

/// Fetches and decodes one dependency's status object.
fn fetch_dep_status(cos: &CosClient, d: &ResponseFuture) -> Result<Value, String> {
    let raw = get_verified(cos, d.bucket(), &d.status_key())
        .map_err(|e| format!("fetching dep status: {e}"))?;
    Value::decode(&raw).map_err(|e| format!("decoding dep status: {e}"))
}

/// The error message of a non-`done` status, if any.
fn map_error_of(status: &Value) -> Option<String> {
    if status.get("state").and_then(Value::as_str) == Some("done") {
        return None;
    }
    Some(
        status
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unknown error")
            .to_owned(),
    )
}

/// Decodes an encoded pair list into keyed pairs.
fn keyed_pairs_of_raw(raw: &[u8]) -> Result<Vec<KeyedPair>, String> {
    let v = Value::decode(raw).map_err(|e| format!("decoding shuffle data: {e}"))?;
    keyed_pairs_of(&v)
}

/// Extracts `(key, pair)` tuples from a decoded pair-list value.
fn keyed_pairs_of(v: &Value) -> Result<Vec<KeyedPair>, String> {
    v.as_list()
        .ok_or("shuffle object must hold a list")?
        .iter()
        .map(|p| Ok((p.req_str("k")?.to_owned(), p.clone())))
        .collect()
}

/// Materializes the user function's input from the task descriptor,
/// merging any job-level `extra` entries into map-shaped inputs.
fn build_input(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    let input = build_input_base(ctx, cos, desc, batch)?;
    let Some(extra) = desc.get("extra").and_then(Value::as_map) else {
        return Ok(input);
    };
    match input {
        Value::Map(mut m) => {
            for (k, v) in extra {
                m.entry(k.clone()).or_insert_with(|| v.clone());
            }
            Ok(Value::Map(m))
        }
        other => Ok(Value::map()
            .with("value", other)
            .with("extra", Value::Map(extra.clone()))),
    }
}

fn build_input_base(
    ctx: &ActivationCtx,
    cos: &CosClient,
    desc: &Value,
    batch: bool,
) -> Result<Value, String> {
    match desc.req_str("kind")? {
        "value" => Ok(desc.get("value").cloned().unwrap_or(Value::Null)),
        "partition" => {
            let part = Partition::from_value(desc.get("part").ok_or("missing field `part`")?)?;
            let data = read_aligned(cos, &part).map_err(|e| e.to_string())?;
            Ok(part
                .to_value()
                .with("group", part.key.as_str())
                .with("data", Value::bytes(data.to_vec())))
        }
        "reduce" => {
            let deps = desc
                .req_list("deps")?
                .iter()
                .map(ResponseFuture::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let poll = Duration::from_millis(desc.req_i64("poll_ms")?.max(1) as u64);
            let group = desc.get("group").cloned().unwrap_or(Value::Null);

            // Gather map results in *completion order* as each status
            // lands, instead of waiting for the full barrier and then
            // downloading everything at once. Results are slotted by dep
            // index, so the reduce function still sees them in submission
            // order — only the download timing changes.
            let mut slots: Vec<Option<Value>> = vec![None; deps.len()];
            for_each_dep_done(ctx, cos, &deps, poll, batch, |i, d| {
                let status_raw = get_verified(cos, d.bucket(), &d.status_key())
                    .map_err(|e| format!("fetching dep status: {e}"))?;
                let status =
                    Value::decode(&status_raw).map_err(|e| format!("decoding dep status: {e}"))?;
                if status.req_str("state")? != "done" {
                    let msg = status
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error");
                    return Err(format!("map task {} failed: {msg}", d.label()));
                }
                // lint: allow(L009) — i is a dep index, slots is deps-sized
                slots[i] = Some(match status.get("result") {
                    // The map's result rode inside its status object.
                    Some(r) => r.clone(),
                    None => {
                        let result_raw = get_verified(cos, d.bucket(), &d.result_key())
                            .map_err(|e| format!("fetching dep result: {e}"))?;
                        Value::decode(&result_raw).map_err(|e| format!("decoding dep: {e}"))?
                    }
                });
                Ok(())
            })?;
            let results: Vec<Value> = slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| s.ok_or_else(|| format!("dependency slot {i} was never fetched")))
                .collect::<Result<_, _>>()?;
            Ok(Value::map()
                .with("group", group)
                .with("results", Value::List(results)))
        }
        other => Err(format!("unknown task kind `{other}`")),
    }
}

/// "The reduce function will wait for all the partial results before
/// processing them" (§4.3) — implemented as a single batched watch: one
/// LIST per distinct job prefix per poll tick covers every dependency
/// (instead of O(deps) per-key probes), and `fetch(i, dep)` runs for each
/// dependency *as its status lands*, so downloads overlap the stragglers
/// still running rather than queueing behind a full barrier.
///
/// With `batch` off, each poll tick probes every still-pending status key
/// individually — the original data path, kept for ablation and for
/// payloads from older clients. Either way results are slotted by
/// dependency index, so the assembled input is bitwise-identical.
fn for_each_dep_done<F>(
    ctx: &ActivationCtx,
    cos: &CosClient,
    deps: &[ResponseFuture],
    poll: Duration,
    batch: bool,
    mut fetch: F,
) -> Result<(), String>
where
    F: FnMut(usize, &ResponseFuture) -> Result<(), String>,
{
    // Precompute the wanted status keys so each poll is a set intersection.
    let mut prefixes: Vec<(&str, String)> = Vec::new();
    let mut wanted: std::collections::HashMap<String, usize> =
        std::collections::HashMap::with_capacity(deps.len());
    for (i, d) in deps.iter().enumerate() {
        let p = (d.bucket(), d.job_prefix());
        if !prefixes.iter().any(|q| q.0 == p.0 && q.1 == p.1) {
            prefixes.push(p);
        }
        wanted.insert(d.status_key(), i);
    }
    let mut fetched = vec![false; deps.len()];
    let mut done = 0usize;
    loop {
        if batch {
            for (bucket, prefix) in &prefixes {
                let listed = cos
                    .list(bucket, prefix)
                    .map_err(|e| format!("listing statuses: {e}"))?;
                for meta in listed {
                    let Some(&i) = wanted.get(&meta.key) else {
                        continue;
                    };
                    // lint: allow(L009) — wanted maps status keys to dep
                    // indexes; fetched/deps are deps-sized
                    if !fetched[i] {
                        // lint: allow(L009) — same deps-sized index
                        fetched[i] = true;
                        // lint: allow(L009) — same deps-sized index
                        fetch(i, &deps[i])?;
                        done += 1;
                    }
                }
            }
        } else {
            for (i, d) in deps.iter().enumerate() {
                // lint: allow(L009) — enumerate index over deps-sized vec
                if fetched[i] {
                    continue;
                }
                // One existence probe per pending dependency per tick —
                // a transient error reads as "not there yet" and is
                // retried next tick.
                if cos.get(d.bucket(), &d.status_key()).is_ok() {
                    // lint: allow(L009) — enumerate index over deps-sized vec
                    fetched[i] = true;
                    fetch(i, d)?;
                    done += 1;
                }
            }
        }
        if done >= deps.len() {
            return Ok(());
        }
        if ctx.remaining() < poll {
            return Err(format!(
                "reducer ran out of time waiting for {}/{} map results",
                done,
                deps.len()
            ));
        }
        rustwren_sim::sleep(poll);
    }
}

fn panic_text(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_payload_roundtrip() {
        let p = AgentPayload {
            bucket: "b".into(),
            exec_id: "e1".into(),
            job_id: 4,
            task: 9,
            func_name: "tone".into(),
            inline: None,
            cache: false,
            batch: false,
            inline_max: 0,
        };
        assert_eq!(AgentPayload::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn agent_payload_carries_inline_desc_and_cache_flag() {
        let p = AgentPayload {
            bucket: "b".into(),
            exec_id: "e1".into(),
            job_id: 4,
            task: 9,
            func_name: "tone".into(),
            inline: Some(Value::map().with("kind", "value").with("value", 7i64)),
            cache: true,
            batch: true,
            inline_max: 64 * 1024,
        };
        let decoded = AgentPayload::decode(&p.encode()).expect("decodes");
        assert_eq!(decoded, p);
        assert_eq!(
            decoded
                .inline
                .as_ref()
                .and_then(|d| d.get("kind"))
                .and_then(Value::as_str),
            Some("value")
        );
        assert!(decoded.cache);
    }

    #[test]
    fn agent_payload_without_cache_key_defaults_to_staged_semantics() {
        // A payload encoded before the data-path fields existed still
        // decodes — and conservatively disables both optimisations.
        let old = Value::map()
            .with("bucket", "b")
            .with("exec", "e1")
            .with("job", 4i64)
            .with("task", 9i64)
            .with("func", "tone")
            .encode();
        let decoded = AgentPayload::decode(&old).expect("decodes");
        assert_eq!(decoded.inline, None);
        assert!(!decoded.cache);
    }

    #[test]
    fn agent_payload_decode_rejects_garbage() {
        assert!(AgentPayload::decode(b"nonsense").is_err());
        assert!(AgentPayload::decode(&Value::map().with("bucket", "b").encode()).is_err());
    }

    #[test]
    fn task_specs_encode_their_kind() {
        let v = TaskSpec::Value(Value::Int(5)).to_value();
        assert_eq!(v.req_str("kind"), Ok("value"));
        let p = TaskSpec::Partition(Partition {
            bucket: "b".into(),
            key: "k".into(),
            start: 0,
            end: 10,
            index: 0,
        })
        .to_value();
        assert_eq!(p.req_str("kind"), Ok("partition"));
        let r = TaskSpec::Reduce {
            deps: vec![ResponseFuture::new("b", "e", 1, 0)],
            group: Some("nyc".into()),
            poll: Duration::from_millis(500),
        }
        .to_value();
        assert_eq!(r.req_str("kind"), Ok("reduce"));
        assert_eq!(r.req_i64("poll_ms"), Ok(500));
        assert_eq!(r.get("group").and_then(Value::as_str), Some("nyc"));
    }

    #[test]
    fn shuffle_reduce_descriptor_stays_compact_at_high_fanin() {
        // A reducer over 1,000 maps once carried 1,000 inlined futures in
        // its descriptor — big enough to evade W003's payload estimate and
        // bloat every activation. The dense dep range compacts to a
        // constant-size reference.
        let deps: Vec<ResponseFuture> = (0..1_000)
            .map(|t| ResponseFuture::new("b", "e", 1, t))
            .collect();
        let spec = TaskSpec::ShuffleReduce {
            deps: deps.clone(),
            index: 3,
            poll: Duration::from_millis(500),
            reducers: 8,
            plane: ShufflePlane::Partitioned,
            exchange: ExchangeMode::Cos,
            fanin: 16,
        };
        let v = spec.to_value();
        assert!(
            v.encoded_len() < 256,
            "1,000-dep descriptor must be a compact reference, was {} bytes",
            v.encoded_len()
        );
        assert_eq!(decode_shuffle_deps(&v).expect("decodes"), deps);

        // Legacy descriptors with an explicit "deps" list still decode.
        let legacy = Value::map().with(
            "deps",
            Value::List(deps.iter().take(3).map(ResponseFuture::to_value).collect()),
        );
        assert_eq!(decode_shuffle_deps(&legacy).expect("decodes"), deps[..3]);
    }

    #[test]
    fn status_value_carries_error() {
        let s = status_value("error", Some("boom"), 1.0, 2.0);
        assert_eq!(s.req_str("state"), Ok("error"));
        assert_eq!(s.get("error").and_then(Value::as_str), Some("boom"));
        let ok = status_value("done", None, 1.0, 2.0);
        assert!(ok.get("error").is_none());
    }

    #[test]
    fn func_key_layout() {
        assert_eq!(func_key("e2", 7), "jobs/e2/7/func");
    }
}
