//! [`TaskCtx`]: what a user function sees while it runs in the cloud.

use std::fmt;
use std::time::Duration;

use rustwren_faas::{ActivationCtx, ActivationId};
use rustwren_sim::{NetworkProfile, SimInstant};
use rustwren_store::CosClient;

use crate::cloud::SimCloud;
use crate::config::SpawnStrategy;
use crate::executor::ExecutorBuilder;
use crate::future::ResponseFuture;
use crate::wire::Value;

/// The execution context passed to every [`crate::RemoteFn`].
///
/// Besides the virtual clock and modeled-compute charging, it exposes
/// [`executor`](TaskCtx::executor) — an in-cloud executor over the
/// data-center network. This is the paper's *dynamic composability* (§4.4):
/// any function can spawn further parallel jobs with two lines of code, with
/// no predeployment.
pub struct TaskCtx {
    activation: ActivationCtx,
    cloud: SimCloud,
}

impl fmt::Debug for TaskCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskCtx")
            .field("activation", &self.activation.activation_id())
            .finish()
    }
}

impl TaskCtx {
    pub(crate) fn new(activation: ActivationCtx, cloud: SimCloud) -> TaskCtx {
        TaskCtx { activation, cloud }
    }

    /// The id of the activation running this task.
    pub fn activation_id(&self) -> ActivationId {
        self.activation.activation_id()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.activation.now()
    }

    /// Charges `d` of modeled CPU work (scaled by the container's speed).
    pub fn charge(&self, d: Duration) {
        self.activation.charge(d);
    }

    /// Time remaining before the platform's execution limit.
    pub fn remaining(&self) -> Duration {
        self.activation.remaining()
    }

    /// A COS client over the in-cloud network.
    pub fn cos(&self) -> CosClient {
        self.activation.cos_client()
    }

    /// The cloud this task runs in.
    pub fn cloud(&self) -> &SimCloud {
        &self.cloud
    }

    /// The underlying FaaS activation context.
    pub fn activation(&self) -> &ActivationCtx {
        &self.activation
    }

    /// An executor builder positioned *inside* the cloud (data-center
    /// network, modest direct-spawn pool) — customize then `build()`.
    pub fn executor_builder(&self) -> ExecutorBuilder {
        ExecutorBuilder::new(self.cloud.clone())
            .network(NetworkProfile::datacenter())
            .spawn(SpawnStrategy::Direct { client_threads: 4 })
    }

    /// An in-cloud executor with default settings (the two-line composition
    /// hook from the paper's `foo()` example).
    ///
    /// # Errors
    ///
    /// Executor construction errors (e.g. unknown runtime).
    pub fn executor(&self) -> crate::error::Result<crate::executor::Executor> {
        self.executor_builder().build()
    }

    /// Wraps futures into a marker value; returning it from a function makes
    /// the client's `get_result()` transparently await them (§4.2's
    /// "composition-aware" collection).
    pub fn futures_value(&self, futures: &[ResponseFuture]) -> Value {
        ResponseFuture::set_to_value(futures)
    }
}
