//! [`SimCloud`]: one simulated IBM Cloud — kernel, COS, Cloud Functions and
//! the function registry, wired together.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use rustwren_faas::{CloudFunctions, PlatformConfig};
use rustwren_sim::chaos::{ChaosEngine, ChaosStats, FaultPlan, FaultRecord};
use rustwren_sim::{Kernel, NetworkProfile};
use rustwren_store::{ObjectStore, RelayTier};

use crate::executor::ExecutorBuilder;
use crate::registry::{FunctionRegistry, RemoteFn};

pub(crate) struct CloudInner {
    pub(crate) kernel: Kernel,
    pub(crate) store: ObjectStore,
    pub(crate) faas: CloudFunctions,
    pub(crate) registry: FunctionRegistry,
    pub(crate) client_net: NetworkProfile,
    pub(crate) relay: RelayTier,
    pub(crate) exec_seq: AtomicU64,
    pub(crate) seed: u64,
}

/// A complete simulated IBM Cloud plus the client's network position.
/// Cheap to clone. The entry point of the whole library.
///
/// # Examples
///
/// ```
/// use rustwren_core::{SimCloud, Value};
///
/// let cloud = SimCloud::builder().seed(7).build();
/// cloud.register_fn("add7", |_ctx: &rustwren_core::TaskCtx, v: Value| {
///     Ok(Value::Int(v.as_i64().ok_or("expected int")? + 7))
/// });
/// let results = cloud.run(|| {
///     let exec = cloud.executor().build()?;
///     exec.map("add7", [Value::Int(3), Value::Int(6), Value::Int(9)])?;
///     exec.get_result()
/// })?;
/// assert_eq!(results, vec![Value::Int(10), Value::Int(13), Value::Int(16)]);
/// # Ok::<(), rustwren_core::PywrenError>(())
/// ```
#[derive(Clone)]
pub struct SimCloud {
    pub(crate) inner: Arc<CloudInner>,
}

impl fmt::Debug for SimCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCloud")
            .field("client_net", &self.inner.client_net)
            .field("functions", &self.inner.registry)
            .finish()
    }
}

impl SimCloud {
    /// Starts building a cloud.
    pub fn builder() -> SimCloudBuilder {
        SimCloudBuilder {
            platform: PlatformConfig::default(),
            client_net: NetworkProfile::wan(),
            seed: 0xC10D,
            chaos: None,
            kernel: None,
        }
    }

    pub(crate) fn from_inner(inner: Arc<CloudInner>) -> SimCloud {
        SimCloud { inner }
    }

    pub(crate) fn downgrade(&self) -> Weak<CloudInner> {
        Arc::downgrade(&self.inner)
    }

    /// The virtual-time kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.inner.kernel
    }

    /// The object-storage service.
    pub fn store(&self) -> &ObjectStore {
        &self.inner.store
    }

    /// The Cloud Functions service.
    pub fn functions(&self) -> &CloudFunctions {
        &self.inner.faas
    }

    /// The function registry (Rust's stand-in for pickled code).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.inner.registry
    }

    /// The client's network profile (WAN laptop by default).
    pub fn client_network(&self) -> &NetworkProfile {
        &self.inner.client_net
    }

    /// The simulated VM-exchange relay tier used by the shuffle plane's
    /// direct container-to-container exchange
    /// ([`crate::ExchangeMode::Relay`]).
    pub fn relay(&self) -> &RelayTier {
        &self.inner.relay
    }

    /// Registers a user function under `name`; see [`RemoteFn`].
    pub fn register_fn<F>(&self, name: &str, f: F)
    where
        F: RemoteFn + 'static,
    {
        self.inner.registry.register(name, f);
    }

    /// Enters the simulation on the calling thread as "the client" and runs
    /// `f` to completion in virtual time.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`, including simulation deadlocks.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        self.inner.kernel.run("client", f)
    }

    /// Starts building an executor (the paper's `pw.ibm_cf_executor()`).
    pub fn executor(&self) -> ExecutorBuilder {
        ExecutorBuilder::new(self.clone())
    }

    pub(crate) fn next_exec_id(&self) -> String {
        format!("e{}", self.inner.exec_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Counters of faults the installed chaos engine has fired so far
    /// (zeroes when the cloud was built without a [`FaultPlan`]).
    pub fn chaos_stats(&self) -> ChaosStats {
        self.inner
            .kernel
            .chaos()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// The injected-fault timeline so far, sorted by virtual time — equal
    /// across runs with the same seed and [`FaultPlan`]. Empty when no plan
    /// was installed.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.inner
            .kernel
            .chaos()
            .map(|c| c.fault_log())
            .unwrap_or_default()
    }
}

/// Builder for [`SimCloud`].
#[derive(Debug)]
pub struct SimCloudBuilder {
    platform: PlatformConfig,
    client_net: NetworkProfile,
    seed: u64,
    chaos: Option<FaultPlan>,
    kernel: Option<Kernel>,
}

impl SimCloudBuilder {
    /// Replaces the FaaS platform configuration.
    pub fn platform(mut self, config: PlatformConfig) -> SimCloudBuilder {
        self.platform = config;
        self
    }

    /// Sets the client's network position (default: high-latency WAN, the
    /// paper's evaluation setup).
    pub fn client_network(mut self, net: NetworkProfile) -> SimCloudBuilder {
        self.client_net = net;
        self
    }

    /// Seeds every deterministic draw in the cloud.
    pub fn seed(mut self, seed: u64) -> SimCloudBuilder {
        self.seed = seed;
        self
    }

    /// Installs a deterministic fault-injection plan: every service in this
    /// cloud consults the resulting [`ChaosEngine`] at its hook points, so
    /// the same seed and plan replay the exact same fault timeline.
    pub fn chaos(mut self, plan: FaultPlan) -> SimCloudBuilder {
        self.chaos = Some(plan);
        self
    }

    /// Builds the cloud on an externally supplied kernel instead of a fresh
    /// one. This is how the `rustwren-verify` model checker drives a full
    /// cloud under its exploration schedulers: it configures a kernel
    /// (scheduler, lock-order recording) and hands it to the builder.
    pub fn kernel(mut self, kernel: Kernel) -> SimCloudBuilder {
        self.kernel = Some(kernel);
        self
    }

    /// Builds the cloud and deploys the IBM-PyWren system actions.
    ///
    /// # Panics
    ///
    /// Panics on an invalid platform configuration (e.g. a degenerate
    /// tenant set); use [`try_build`](SimCloudBuilder::try_build) to get
    /// the typed error instead.
    pub fn build(self) -> SimCloud {
        match self.try_build() {
            Ok(cloud) => cloud,
            // lint: allow(L004) — construction-time config validation;
            // never reached on the simulated hot path
            Err(e) => panic!("invalid cloud config: {e}"),
        }
    }

    /// Builds the cloud, surfacing invalid platform configuration (such as
    /// a tenant with a zero quota) as [`crate::PywrenError::Config`].
    ///
    /// # Errors
    ///
    /// [`crate::PywrenError::Config`] when the platform rejects its
    /// configuration at build time.
    pub fn try_build(mut self) -> crate::Result<SimCloud> {
        self.platform.seed = rustwren_sim::hash::hash2(self.seed, self.platform.seed);
        let kernel = self.kernel.take().unwrap_or_default();
        if let Some(plan) = self.chaos.take() {
            kernel.install_chaos(Arc::new(ChaosEngine::new(plan)));
        }
        let store = ObjectStore::new(&kernel);
        let faas = CloudFunctions::try_new(&kernel, &store, self.platform)
            .map_err(|e| crate::PywrenError::Config(e.to_string()))?;
        let inner = Arc::new(CloudInner {
            kernel,
            store,
            faas,
            registry: FunctionRegistry::new(),
            client_net: self.client_net,
            relay: RelayTier::new(rustwren_sim::hash::hash2(self.seed, 0x5E1A)),
            exec_seq: AtomicU64::new(1),
            seed: self.seed,
        });
        let cloud = SimCloud { inner };
        crate::invoker::deploy_invoker(&cloud);
        crate::compose::register_sequence_driver(cloud.registry());
        Ok(cloud)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Value;

    #[test]
    fn builder_defaults_to_wan_client() {
        let cloud = SimCloud::builder().build();
        assert_eq!(cloud.client_network(), &NetworkProfile::wan());
    }

    #[test]
    fn register_fn_is_visible_in_registry() {
        let cloud = SimCloud::builder().build();
        cloud.register_fn("f", |_ctx: &crate::TaskCtx, v: Value| Ok(v));
        assert!(cloud.registry().contains("f"));
    }

    #[test]
    fn exec_ids_are_unique() {
        let cloud = SimCloud::builder().build();
        assert_ne!(cloud.next_exec_id(), cloud.next_exec_id());
    }

    #[test]
    fn invoker_action_is_deployed() {
        let cloud = SimCloud::builder().build();
        assert!(cloud.functions().has_action(crate::invoker::INVOKER_ACTION));
    }

    #[test]
    fn try_build_rejects_degenerate_tenants() {
        let cfg = PlatformConfig {
            tenants: vec![rustwren_faas::TenantConfig::new("acme", 0)],
            ..PlatformConfig::default()
        };
        let err = SimCloud::builder().platform(cfg).try_build().unwrap_err();
        assert!(matches!(err, crate::PywrenError::Config(_)), "{err}");
        assert!(err.to_string().contains("acme"), "{err}");
    }
}
