//! Typed conversions over the wire [`Value`]: ergonomic, checked mappings
//! between Rust types and the dynamic payloads functions exchange.
//!
//! `From<T> for Value` covers the encoding direction for primitives;
//! [`FromValue`] adds the checked decoding direction plus containers, and
//! [`Executor::map_typed`] / [`Executor::get_typed_results`] wire both into
//! the executor API so callers keep native types end to end.

use std::collections::BTreeMap;

use crate::error::{PywrenError, Result};
use crate::executor::Executor;
use crate::future::ResponseFuture;
use crate::wire::Value;

/// Checked extraction of a Rust value from a wire [`Value`].
pub trait FromValue: Sized {
    /// Converts, describing any mismatch.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the expected shape.
    fn from_value(v: &Value) -> std::result::Result<Self, String>;
}

impl FromValue for Value {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        Ok(v.clone())
    }
}

impl FromValue for i64 {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_i64().ok_or_else(|| format!("expected int, got {v}"))
    }
}

impl FromValue for f64 {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected float, got {v}"))
    }
}

impl FromValue for bool {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl FromValue for String {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl FromValue for Vec<u8> {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_bytes()
            .map(<[u8]>::to_vec)
            .ok_or_else(|| format!("expected bytes, got {v}"))
    }
}

impl<T: FromValue> FromValue for Vec<T> {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_list()
            .ok_or_else(|| format!("expected list, got {v}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: FromValue> FromValue for BTreeMap<String, T> {
    fn from_value(v: &Value) -> std::result::Result<Self, String> {
        v.as_map()
            .ok_or_else(|| format!("expected map, got {v}"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), T::from_value(item)?)))
            .collect()
    }
}

impl Executor {
    /// Typed [`map`](Executor::map): inputs convert into [`Value`]s on the
    /// way out.
    ///
    /// # Errors
    ///
    /// Same as [`map`](Executor::map).
    ///
    /// # Examples
    ///
    /// ```
    /// use rustwren_core::{SimCloud, TaskCtx, Value};
    ///
    /// let cloud = SimCloud::builder().build();
    /// cloud.register_fn("add7", |_: &TaskCtx, v: Value| {
    ///     Ok(Value::Int(v.as_i64().ok_or("int")? + 7))
    /// });
    /// let results: Vec<i64> = cloud.run(|| {
    ///     let exec = cloud.executor().build()?;
    ///     exec.map_typed("add7", [3i64, 6, 9])?;
    ///     exec.get_typed_results()
    /// })?;
    /// assert_eq!(results, vec![10, 13, 16]);
    /// # Ok::<(), rustwren_core::PywrenError>(())
    /// ```
    pub fn map_typed<T>(
        &self,
        func: &str,
        inputs: impl IntoIterator<Item = T>,
    ) -> Result<Vec<ResponseFuture>>
    where
        T: Into<Value>,
    {
        self.map(func, inputs.into_iter().map(Into::into))
    }

    /// Typed [`get_result`](Executor::get_result): every collected value is
    /// converted to `R`.
    ///
    /// # Errors
    ///
    /// Same as [`get_result`](Executor::get_result), plus a
    /// [`PywrenError::Task`] describing the first conversion mismatch.
    pub fn get_typed_results<R: FromValue>(&self) -> Result<Vec<R>> {
        self.get_result()?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                R::from_value(v).map_err(|message| PywrenError::Task {
                    task: format!("result #{i}"),
                    message,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_convert_both_ways() {
        assert_eq!(i64::from_value(&Value::Int(5)), Ok(5));
        assert_eq!(f64::from_value(&Value::Float(1.5)), Ok(1.5));
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert_eq!(bool::from_value(&Value::Bool(true)), Ok(true));
        assert_eq!(String::from_value(&Value::from("x")), Ok("x".to_owned()));
        assert_eq!(
            Vec::<u8>::from_value(&Value::bytes(vec![1, 2])),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn mismatches_name_the_expected_type() {
        let err = i64::from_value(&Value::from("nope")).unwrap_err();
        assert!(err.contains("expected int"), "{err}");
        let err = Vec::<i64>::from_value(&Value::Int(1)).unwrap_err();
        assert!(err.contains("expected list"), "{err}");
    }

    #[test]
    fn containers_convert_recursively() {
        let v = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(Vec::<i64>::from_value(&v), Ok(vec![1, 2]));
        // One bad element fails the whole container.
        let v = Value::List(vec![Value::Int(1), Value::from("x")]);
        assert!(Vec::<i64>::from_value(&v).is_err());

        let m = Value::map().with("a", 1i64).with("b", 2i64);
        let map = BTreeMap::<String, i64>::from_value(&m).expect("converts");
        assert_eq!(map["a"], 1);
        assert_eq!(map["b"], 2);
    }

    #[test]
    fn option_treats_null_as_none() {
        assert_eq!(Option::<i64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<i64>::from_value(&Value::Int(4)), Ok(Some(4)));
        assert!(Option::<i64>::from_value(&Value::from("x")).is_err());
    }

    #[test]
    fn typed_results_surface_conversion_errors() {
        let cloud = crate::SimCloud::builder().build();
        cloud.register_fn("stringy", |_: &crate::TaskCtx, _v: Value| {
            Ok(Value::from("not a number"))
        });
        cloud.run(|| {
            let exec = cloud.executor().build().unwrap();
            exec.map_typed("stringy", [1i64]).unwrap();
            let err = exec.get_typed_results::<i64>().unwrap_err();
            assert!(matches!(err, PywrenError::Task { .. }));
        });
    }
}
