//! Executor configuration.

use std::time::Duration;

use rustwren_analyze::{AnalyzeMode, PlanHints};
use rustwren_faas::DEFAULT_RUNTIME;

/// How the client turns a list of tasks into cloud invocations (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnStrategy {
    /// The client issues every invocation itself over its own network, from
    /// a small thread pool — the original PyWren behaviour. Slow from a
    /// high-latency network.
    Direct {
        /// Concurrent client-side invocation threads.
        client_threads: usize,
    },
    /// *Massive function spawning*: the client invokes a handful of remote
    /// invoker functions, each of which issues a group of invocations from
    /// inside the cloud over the low-latency internal network.
    RemoteInvoker {
        /// Invocations per remote invoker function (the paper settled on
        /// groups of 100).
        group_size: usize,
        /// Concurrent invocation streams inside each invoker container
        /// (bounded by one container's CPU).
        invoker_threads: usize,
    },
    /// Per-job choice — the paper's "mechanism … can be enabled and
    /// disabled as needed": jobs of at least `threshold` tasks use
    /// [`massive`](SpawnStrategy::massive) spawning, smaller jobs spawn
    /// directly (the invoker round trip isn't worth it for a handful of
    /// functions).
    Auto {
        /// Minimum task count that enables massive spawning.
        threshold: usize,
    },
}

impl SpawnStrategy {
    /// The paper's final massive-spawning configuration: groups of 100.
    pub fn massive() -> SpawnStrategy {
        SpawnStrategy::RemoteInvoker {
            group_size: 100,
            invoker_threads: 2,
        }
    }

    /// Resolves this strategy for a job of `tasks` tasks ([`Auto`] picks
    /// between direct and massive; concrete strategies return themselves).
    ///
    /// [`Auto`]: SpawnStrategy::Auto
    pub fn resolve_for(&self, tasks: usize) -> SpawnStrategy {
        match self {
            SpawnStrategy::Auto { threshold } => {
                if tasks >= *threshold {
                    SpawnStrategy::massive()
                } else {
                    SpawnStrategy::default()
                }
            }
            concrete => concrete.clone(),
        }
    }
}

impl Default for SpawnStrategy {
    fn default() -> SpawnStrategy {
        SpawnStrategy::Direct { client_threads: 5 }
    }
}

/// Automatic re-invocation of failed tasks during `wait`/`get_result`
/// polling.
///
/// Disabled by default (`max_attempts = 1`): the executor then surfaces
/// failures exactly as IBM-PyWren does, leaving re-execution to a manual
/// [`crate::Executor::reinvoke`]. With a larger budget the executor
/// transparently re-invokes failed tasks with exponential backoff while it
/// polls, so transient faults never reach `get_result`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total executions allowed per task, including the first.
    /// `1` disables automatic retry.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Factor applied to the delay after each further failure.
    pub backoff_multiplier: f64,
    /// Upper bound on the delay.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]` drawn from the executor's seed,
    /// so retry storms decorrelate without breaking reproducibility.
    pub jitter: f64,
    /// Whether tasks that hit the platform execution limit are retried too.
    /// Off by default: a task that needs more than the limit will usually
    /// just hit it again.
    pub retry_timeouts: bool,
    /// Presume a task dead once it has been out this long with **no**
    /// activation id and **no** status object — the signature of an invoker
    /// that was killed before spawning its group. `None` (the default)
    /// leaves such tasks pending forever, the pre-chaos behaviour; jobs
    /// using [`crate::SpawnStrategy::RemoteInvoker`] under fault injection
    /// should set it to roughly the expected spawn-to-status latency.
    pub presumed_dead_after: Option<Duration>,
    /// Cap on automatic re-invocations across the whole job (the *budget*),
    /// on top of the per-task `max_attempts`. A job whose tasks keep
    /// failing stops retrying once the budget is spent instead of grinding
    /// against a sick platform forever. `None` (default) = unbounded.
    pub job_retry_budget: Option<u32>,
    /// Honor server `retry_after` hints as a circuit breaker: when the
    /// platform answers 429 with a deadline, retries scheduled before that
    /// deadline are pushed past it (analyzer W007's dynamic counterpart).
    /// On by default.
    pub honor_retry_after: bool,
}

impl RetryPolicy {
    /// No automatic retries (the seed framework's behaviour).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::from_millis(500),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_secs(30),
            jitter: 0.2,
            retry_timeouts: false,
            presumed_dead_after: None,
            job_retry_budget: None,
            honor_retry_after: true,
        }
    }

    /// Default backoff parameters with a budget of `max_attempts` total
    /// executions per task.
    pub fn with_attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::disabled()
        }
    }

    /// Caps automatic re-invocations across the whole job.
    pub fn with_job_budget(mut self, budget: u32) -> RetryPolicy {
        self.job_retry_budget = Some(budget);
        self
    }

    /// Disables the `retry_after` circuit breaker (blind backoff only).
    pub fn without_retry_hint(mut self) -> RetryPolicy {
        self.honor_retry_after = false;
        self
    }

    /// Whether this policy retries at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `retry` (1-based), without jitter:
    /// `initial_backoff * multiplier^(retry-1)`, capped at `max_backoff`.
    pub fn base_backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        self.initial_backoff
            .mul_f64(self.backoff_multiplier.max(1.0).powi(exp as i32))
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::disabled()
    }
}

/// Speculative (backup) execution of straggler tasks.
///
/// Once most of a job has finished, tasks running far beyond the median
/// completion time are re-invoked as duplicates; whichever copy finishes
/// first supplies the status and result. Disabled by default.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch.
    pub enabled: bool,
    /// Fraction of the job's tasks that must be done before stragglers are
    /// considered.
    pub done_fraction: f64,
    /// A pending task becomes a straggler once it has been out for longer
    /// than this multiple of the median completion time of the job's done
    /// tasks.
    pub straggler_factor: f64,
    /// Minimum number of completed tasks before the median is trusted.
    pub min_done: usize,
    /// Cap on speculative copies per job.
    pub max_speculative: usize,
}

impl SpeculationConfig {
    /// Speculation off (the seed framework's behaviour).
    pub fn disabled() -> SpeculationConfig {
        SpeculationConfig {
            enabled: false,
            done_fraction: 0.75,
            straggler_factor: 2.0,
            min_done: 5,
            max_speculative: 16,
        }
    }

    /// Speculation on, with the default thresholds.
    pub fn on() -> SpeculationConfig {
        SpeculationConfig {
            enabled: true,
            ..SpeculationConfig::disabled()
        }
    }
}

impl Default for SpeculationConfig {
    fn default() -> SpeculationConfig {
        SpeculationConfig::disabled()
    }
}

/// Data-path round-trip elimination: which of the hot-path COS round trips
/// the executor and agent skip.
///
/// Both optimisations preserve results bit-for-bit — they only change *how*
/// bytes reach the agent, never *what* it computes — and both are fully
/// deterministic, so chaos/replay timelines remain reproducible per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPathConfig {
    /// Encoded task descriptors at or below this many bytes travel inside
    /// the activation payload itself instead of behind a staged
    /// `jobs/…/input` object: staging skips the per-task input PUT and the
    /// agent skips the input GET. The same threshold governs the return
    /// leg: results that encode at or below it ride inside the status
    /// object, merging the agent's result+status PUTs into one and sparing
    /// the gatherer's per-task result GET. `0` stages every input and
    /// result (the original IBM-PyWren data path). Larger payloads are
    /// always staged, keeping objects within platform limits.
    pub inline_input_max_bytes: usize,
    /// Warm containers keep the function blob in a container-local cache
    /// keyed by its COS key, validated against its checksum stamp on every
    /// hit: a 1,000-task job over 100 containers pays ~100 func GETs
    /// instead of 1,000. Entries that fail validation (e.g. poisoned by a
    /// chaos fault) are dropped and refetched from COS.
    pub func_cache: bool,
    /// Reducers watch their map dependencies with one LIST over the job's
    /// status prefix per poll tick, gathering each result as its status
    /// lands, instead of the legacy O(deps) per-key probes per tick. Purely
    /// an op-count/latency change: results are still assembled in
    /// submission order, bit-for-bit.
    pub batched_dep_watch: bool,
}

impl DataPathConfig {
    /// Default inline threshold: descriptors up to 64 KiB ride in the
    /// payload.
    pub const DEFAULT_INLINE_MAX_BYTES: usize = 64 * 1024;

    /// Every optimisation off — the seed framework's 4-round-trips-per-task
    /// data path.
    pub fn staged() -> DataPathConfig {
        DataPathConfig {
            inline_input_max_bytes: 0,
            func_cache: false,
            batched_dep_watch: false,
        }
    }
}

impl Default for DataPathConfig {
    fn default() -> DataPathConfig {
        DataPathConfig {
            inline_input_max_bytes: DataPathConfig::DEFAULT_INLINE_MAX_BYTES,
            func_cache: true,
            batched_dep_watch: true,
        }
    }
}

/// Configuration of one [`crate::Executor`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorConfig {
    /// Runtime image for this executor's functions (the paper's
    /// `ibm_cf_executor(runtime='matplotlib')` knob).
    pub runtime: String,
    /// Bucket where jobs, statuses and results are staged.
    pub storage_bucket: String,
    /// Invocation strategy.
    pub spawn: SpawnStrategy,
    /// How often `wait`/`get_result` poll COS for statuses.
    pub poll_interval: Duration,
    /// How often an in-cloud reducer polls COS for its map inputs.
    pub reduce_poll_interval: Duration,
    /// Seed individualizing this executor's jitter/failure stream.
    pub seed: u64,
    /// Automatic retry of failed tasks.
    pub retry: RetryPolicy,
    /// Speculative execution of straggler tasks.
    pub speculation: SpeculationConfig,
    /// Pre-flight job-plan analysis mode. Defaults to the
    /// `RUSTWREN_ANALYZE` environment variable (`off`/`warn`/`deny`),
    /// falling back to [`AnalyzeMode::Warn`].
    pub analyze: AnalyzeMode,
    /// Caller-supplied hints fed into the pre-flight analyzer (recursion
    /// shape, per-task cost estimates the executor cannot infer).
    pub plan_hints: PlanHints,
    /// Hot-path COS round-trip elimination (inline inputs, func-blob
    /// cache).
    pub data_path: DataPathConfig,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            runtime: DEFAULT_RUNTIME.to_owned(),
            storage_bucket: "rustwren-runtime".to_owned(),
            spawn: SpawnStrategy::default(),
            poll_interval: Duration::from_millis(500),
            reduce_poll_interval: Duration::from_millis(1000),
            seed: 1,
            retry: RetryPolicy::disabled(),
            speculation: SpeculationConfig::disabled(),
            analyze: AnalyzeMode::from_env(),
            plan_hints: PlanHints::default(),
            data_path: DataPathConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runtime_matches_platform_default() {
        assert_eq!(ExecutorConfig::default().runtime, DEFAULT_RUNTIME);
    }

    #[test]
    fn default_strategy_is_direct() {
        assert_eq!(
            SpawnStrategy::default(),
            SpawnStrategy::Direct { client_threads: 5 }
        );
    }

    #[test]
    fn recovery_is_disabled_by_default() {
        let cfg = ExecutorConfig::default();
        assert!(!cfg.retry.enabled());
        assert!(!cfg.speculation.enabled);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(100),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
            jitter: 0.0,
            retry_timeouts: false,
            presumed_dead_after: None,
            job_retry_budget: None,
            honor_retry_after: true,
        };
        assert_eq!(p.base_backoff(1), Duration::from_millis(100));
        assert_eq!(p.base_backoff(2), Duration::from_millis(200));
        assert_eq!(p.base_backoff(3), Duration::from_millis(400));
        assert_eq!(p.base_backoff(4), Duration::from_millis(500));
        assert_eq!(p.base_backoff(40), Duration::from_millis(500));
    }

    #[test]
    fn with_attempts_enables_retry() {
        assert!(RetryPolicy::with_attempts(3).enabled());
        assert!(!RetryPolicy::with_attempts(0).enabled(), "clamped to 1");
    }

    #[test]
    fn data_path_defaults_inline_and_cache() {
        let dp = ExecutorConfig::default().data_path;
        assert_eq!(dp.inline_input_max_bytes, 64 * 1024);
        assert!(dp.func_cache);
        let staged = DataPathConfig::staged();
        assert_eq!(staged.inline_input_max_bytes, 0);
        assert!(!staged.func_cache);
    }

    #[test]
    fn massive_uses_groups_of_100() {
        assert_eq!(
            SpawnStrategy::massive(),
            SpawnStrategy::RemoteInvoker {
                group_size: 100,
                invoker_threads: 2
            }
        );
    }
}
