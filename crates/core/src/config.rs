//! Executor configuration.

use std::time::Duration;

use rustwren_faas::DEFAULT_RUNTIME;

/// How the client turns a list of tasks into cloud invocations (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnStrategy {
    /// The client issues every invocation itself over its own network, from
    /// a small thread pool — the original PyWren behaviour. Slow from a
    /// high-latency network.
    Direct {
        /// Concurrent client-side invocation threads.
        client_threads: usize,
    },
    /// *Massive function spawning*: the client invokes a handful of remote
    /// invoker functions, each of which issues a group of invocations from
    /// inside the cloud over the low-latency internal network.
    RemoteInvoker {
        /// Invocations per remote invoker function (the paper settled on
        /// groups of 100).
        group_size: usize,
        /// Concurrent invocation streams inside each invoker container
        /// (bounded by one container's CPU).
        invoker_threads: usize,
    },
    /// Per-job choice — the paper's "mechanism … can be enabled and
    /// disabled as needed": jobs of at least `threshold` tasks use
    /// [`massive`](SpawnStrategy::massive) spawning, smaller jobs spawn
    /// directly (the invoker round trip isn't worth it for a handful of
    /// functions).
    Auto {
        /// Minimum task count that enables massive spawning.
        threshold: usize,
    },
}

impl SpawnStrategy {
    /// The paper's final massive-spawning configuration: groups of 100.
    pub fn massive() -> SpawnStrategy {
        SpawnStrategy::RemoteInvoker {
            group_size: 100,
            invoker_threads: 2,
        }
    }

    /// Resolves this strategy for a job of `tasks` tasks ([`Auto`] picks
    /// between direct and massive; concrete strategies return themselves).
    ///
    /// [`Auto`]: SpawnStrategy::Auto
    pub fn resolve_for(&self, tasks: usize) -> SpawnStrategy {
        match self {
            SpawnStrategy::Auto { threshold } => {
                if tasks >= *threshold {
                    SpawnStrategy::massive()
                } else {
                    SpawnStrategy::default()
                }
            }
            concrete => concrete.clone(),
        }
    }
}

impl Default for SpawnStrategy {
    fn default() -> SpawnStrategy {
        SpawnStrategy::Direct { client_threads: 5 }
    }
}

/// Configuration of one [`crate::Executor`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorConfig {
    /// Runtime image for this executor's functions (the paper's
    /// `ibm_cf_executor(runtime='matplotlib')` knob).
    pub runtime: String,
    /// Bucket where jobs, statuses and results are staged.
    pub storage_bucket: String,
    /// Invocation strategy.
    pub spawn: SpawnStrategy,
    /// How often `wait`/`get_result` poll COS for statuses.
    pub poll_interval: Duration,
    /// How often an in-cloud reducer polls COS for its map inputs.
    pub reduce_poll_interval: Duration,
    /// Seed individualizing this executor's jitter/failure stream.
    pub seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            runtime: DEFAULT_RUNTIME.to_owned(),
            storage_bucket: "rustwren-runtime".to_owned(),
            spawn: SpawnStrategy::default(),
            poll_interval: Duration::from_millis(500),
            reduce_poll_interval: Duration::from_millis(1000),
            seed: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runtime_matches_platform_default() {
        assert_eq!(ExecutorConfig::default().runtime, DEFAULT_RUNTIME);
    }

    #[test]
    fn default_strategy_is_direct() {
        assert_eq!(
            SpawnStrategy::default(),
            SpawnStrategy::Direct { client_threads: 5 }
        );
    }

    #[test]
    fn massive_uses_groups_of_100() {
        assert_eq!(
            SpawnStrategy::massive(),
            SpawnStrategy::RemoteInvoker {
                group_size: 100,
                invoker_threads: 2
            }
        );
    }
}
