//! IBM-PyWren error types.

use std::error::Error;
use std::fmt;

use rustwren_analyze::Diagnostic;
use rustwren_faas::InvokeError;
use rustwren_store::StoreError;

use crate::wire::WireError;

/// Error returned by executor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PywrenError {
    /// The function name was never registered with the cloud.
    UnknownFunction(String),
    /// Storage operation failed.
    Storage(StoreError),
    /// Function invocation failed.
    Invoke(InvokeError),
    /// A payload could not be decoded.
    Wire(WireError),
    /// A remote task finished with an application error.
    Task {
        /// The failing task's identifier, e.g. `"job-3/task-17"`.
        task: String,
        /// The error message the user function (or agent) produced.
        message: String,
    },
    /// `get_result`/`wait` exceeded its timeout.
    Timeout {
        /// Tasks that had completed when the timeout fired.
        done: usize,
        /// Tasks still pending.
        pending: usize,
    },
    /// A data source matched no objects (empty bucket, missing keys).
    EmptyDataSource(String),
    /// An invalid configuration value or malformed user-supplied argument.
    Config(String),
    /// A staged payload failed its end-to-end checksum verification: the
    /// bytes read back from storage are not the bytes that were written
    /// (corruption or truncation in flight). Retryable — the stored object
    /// is typically intact, so a re-fetch or task re-execution heals it.
    Integrity {
        /// The offending object, as `bucket/key`.
        key: String,
        /// What the verifier observed (missing stamp, checksum mismatch).
        detail: String,
    },
    /// The pre-flight analyzer rejected the job plan
    /// ([`crate::AnalyzeMode::Deny`] with error-severity findings).
    Plan {
        /// Every finding the analyzer produced for the plan, most severe
        /// first — warnings are included for context even though only
        /// error-severity findings trigger the rejection.
        diagnostics: Vec<Diagnostic>,
    },
}

impl fmt::Display for PywrenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PywrenError::UnknownFunction(name) => {
                write!(
                    f,
                    "unknown function `{name}` (register it on the cloud first)"
                )
            }
            PywrenError::Storage(e) => write!(f, "storage error: {e}"),
            PywrenError::Invoke(e) => write!(f, "invocation error: {e}"),
            PywrenError::Wire(e) => write!(f, "payload decode error: {e}"),
            PywrenError::Task { task, message } => write!(f, "task {task} failed: {message}"),
            PywrenError::Timeout { done, pending } => {
                write!(
                    f,
                    "timed out with {done} task(s) done and {pending} pending"
                )
            }
            PywrenError::EmptyDataSource(what) => {
                write!(f, "data source matched no objects: {what}")
            }
            PywrenError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PywrenError::Integrity { key, detail } => {
                write!(f, "data integrity violation at `{key}`: {detail}")
            }
            PywrenError::Plan { diagnostics } => {
                write!(
                    f,
                    "job plan rejected by pre-flight analysis ({} finding(s))",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for PywrenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PywrenError::Storage(e) => Some(e),
            PywrenError::Invoke(e) => Some(e),
            PywrenError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for PywrenError {
    fn from(e: StoreError) -> PywrenError {
        PywrenError::Storage(e)
    }
}

impl From<InvokeError> for PywrenError {
    fn from(e: InvokeError) -> PywrenError {
        PywrenError::Invoke(e)
    }
}

impl From<WireError> for PywrenError {
    fn from(e: WireError) -> PywrenError {
        PywrenError::Wire(e)
    }
}

/// Convenience alias for executor results.
pub type Result<T> = std::result::Result<T, PywrenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PywrenError::Task {
            task: "job-1/task-2".into(),
            message: "bad csv".into(),
        };
        assert_eq!(e.to_string(), "task job-1/task-2 failed: bad csv");
        assert!(PywrenError::Timeout {
            done: 3,
            pending: 7
        }
        .to_string()
        .contains("3"));
    }

    #[test]
    fn config_error_displays_message() {
        let e = PywrenError::Config("chunk_size must be non-zero".into());
        assert_eq!(
            e.to_string(),
            "invalid configuration: chunk_size must be non-zero"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn plan_error_lists_diagnostics() {
        use rustwren_analyze::{Rule, Severity};
        let e = PywrenError::Plan {
            diagnostics: vec![Diagnostic {
                rule: Rule::W001,
                severity: Severity::Error,
                message: "parents fill the limit".into(),
                suggestion: "reduce fanout".into(),
            }],
        };
        let s = e.to_string();
        assert!(s.contains("rejected by pre-flight analysis"));
        assert!(s.contains("W001 error: parents fill the limit"));
        assert!(s.contains("help: reduce fanout"));
        assert!(e.source().is_none());
    }

    #[test]
    fn integrity_error_displays_key_and_detail() {
        let e = PywrenError::Integrity {
            key: "rustwren-runtime/jobs/e/j/t00001/result".into(),
            detail: WireError::MissingStamp.to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("data integrity violation"));
        assert!(s.contains("jobs/e/j/t00001/result"));
        assert!(e.source().is_none());
    }

    #[test]
    fn source_chains_to_substrate_errors() {
        let e = PywrenError::Storage(StoreError::NoSuchBucket("b".into()));
        assert!(e.source().is_some());
        assert!(PywrenError::UnknownFunction("f".into()).source().is_none());
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: PywrenError = StoreError::NoSuchBucket("b".into()).into();
        assert!(matches!(e, PywrenError::Storage(_)));
        let e: PywrenError = InvokeError::Throttled {
            limit: 10,
            retry_after: std::time::Duration::from_secs(1),
        }
        .into();
        assert!(matches!(e, PywrenError::Invoke(_)));
        let e: PywrenError = WireError::UnexpectedEof.into();
        assert!(matches!(e, PywrenError::Wire(_)));
    }
}
