//! Data discovery and partitioning (§4.3 of the paper).
//!
//! `map_reduce()` accepts either explicit object keys or whole buckets. For
//! buckets, a *discovery* pass (HEAD on the bucket + LIST) enumerates the
//! objects; the *partitioner* then splits each object into byte-range
//! partitions from a configurable chunk size — or one partition per object
//! when no chunk size is given ("data object granularity").
//!
//! Partition boundaries are expressed in **logical** bytes (see
//! [`rustwren_store::ObjectMeta::logical_size`]) and aligned to line breaks
//! at read time with the Hadoop rule: a line belongs to the partition in
//! which it *starts*; readers skip the partial first line (unless at offset
//! 0) and read through the end of the line straddling their upper boundary.

use bytes::Bytes;
use rustwren_store::{CosClient, ObjectMeta, StoreError};

use crate::error::{PywrenError, Result};
use crate::wire::Value;

/// Extra bytes fetched past a partition boundary while hunting for the
/// aligning newline; reads extend in further steps of this size if a single
/// record is longer.
const ALIGN_SLACK: u64 = 256 * 1024;

/// A reference to one stored object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    /// Bucket name.
    pub bucket: String,
    /// Object key.
    pub key: String,
}

impl ObjectRef {
    /// Creates a reference.
    pub fn new(bucket: impl Into<String>, key: impl Into<String>) -> ObjectRef {
        ObjectRef {
            bucket: bucket.into(),
            key: key.into(),
        }
    }
}

/// What a `map` / `map_reduce` call iterates over.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSource {
    /// In-memory values, one task each (the plain `map()` path).
    Values(Vec<Value>),
    /// Explicit object keys; discovery HEADs each one.
    Keys(Vec<ObjectRef>),
    /// Whole buckets; discovery LISTs them (§4.3's automatic mode).
    Buckets(Vec<String>),
}

impl DataSource {
    /// Convenience constructor for a single bucket.
    pub fn bucket(name: impl Into<String>) -> DataSource {
        DataSource::Buckets(vec![name.into()])
    }
}

/// An object found by discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredObject {
    /// Bucket the object lives in.
    pub bucket: String,
    /// Its metadata (including logical size).
    pub meta: ObjectMeta,
}

/// One byte-range partition of one object (logical offsets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Bucket of the source object.
    pub bucket: String,
    /// Key of the source object.
    pub key: String,
    /// Logical start offset (inclusive).
    pub start: u64,
    /// Logical end offset (exclusive).
    pub end: u64,
    /// Index of this partition within the whole job.
    pub index: usize,
}

impl Partition {
    /// Logical bytes covered by this partition.
    pub fn logical_len(&self) -> u64 {
        self.end - self.start
    }

    /// Encodes the partition descriptor for the agent payload.
    pub fn to_value(&self) -> Value {
        Value::map()
            .with("bucket", self.bucket.as_str())
            .with("key", self.key.as_str())
            .with("start", self.start as i64)
            .with("end", self.end as i64)
            .with("index", self.index as i64)
    }

    /// Decodes a partition descriptor.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field: missing fields, negative
    /// offsets/index, or `end < start`.
    pub fn from_value(v: &Value) -> std::result::Result<Partition, String> {
        let start = non_negative(v.req_i64("start")?, "start")?;
        let end = non_negative(v.req_i64("end")?, "end")?;
        if end < start {
            return Err(format!("partition end {end} precedes start {start}"));
        }
        let index = non_negative(v.req_i64("index")?, "index")? as usize;
        Ok(Partition {
            bucket: v.req_str("bucket")?.to_owned(),
            key: v.req_str("key")?.to_owned(),
            start,
            end,
            index,
        })
    }
}

fn non_negative(n: i64, field: &str) -> std::result::Result<u64, String> {
    u64::try_from(n).map_err(|_| format!("field `{field}` must be non-negative, got {n}"))
}

/// Discovers the objects behind a data source (HEAD/LIST requests, charged
/// to `cos`'s network).
///
/// # Errors
///
/// Storage errors, or [`PywrenError::EmptyDataSource`] if nothing matched.
/// `DataSource::Values` is rejected here — it does not name objects.
pub fn discover(cos: &CosClient, source: &DataSource) -> Result<Vec<DiscoveredObject>> {
    let mut objects = Vec::new();
    match source {
        DataSource::Values(_) => {
            return Err(PywrenError::EmptyDataSource(
                "DataSource::Values carries no storage objects".to_owned(),
            ))
        }
        DataSource::Keys(refs) => {
            for r in refs {
                let meta = cos.head(&r.bucket, &r.key)?;
                objects.push(DiscoveredObject {
                    bucket: r.bucket.clone(),
                    meta,
                });
            }
        }
        DataSource::Buckets(buckets) => {
            for bucket in buckets {
                // The paper describes a HEAD over each bucket to obtain the
                // information needed for the execution, then enumeration.
                let _ = cos.head_bucket(bucket)?;
                for meta in cos.list(bucket, "")? {
                    objects.push(DiscoveredObject {
                        bucket: bucket.clone(),
                        meta,
                    });
                }
            }
        }
    }
    if objects.is_empty() {
        return Err(PywrenError::EmptyDataSource(format!("{source:?}")));
    }
    Ok(objects)
}

/// Splits discovered objects into partitions.
///
/// With `chunk_size = Some(c)`, each object is split into
/// `ceil(logical_size / c)` ranges — *per object*, which is why the paper's
/// Table 3 executor counts do not double when the chunk halves. With `None`,
/// one partition per object (object granularity).
///
/// # Errors
///
/// [`PywrenError::Config`] if `chunk_size` is `Some(0)`.
pub fn partition_objects(
    objects: &[DiscoveredObject],
    chunk_size: Option<u64>,
) -> Result<Vec<Partition>> {
    if let Some(0) = chunk_size {
        return Err(PywrenError::Config("chunk_size must be non-zero".into()));
    }
    let mut parts = Vec::new();
    for obj in objects {
        let size = obj.meta.logical_size;
        match chunk_size {
            None => parts.push(Partition {
                bucket: obj.bucket.clone(),
                key: obj.meta.key.clone(),
                start: 0,
                end: size,
                index: parts.len(),
            }),
            Some(c) => {
                let mut start = 0;
                loop {
                    let end = (start + c).min(size);
                    parts.push(Partition {
                        bucket: obj.bucket.clone(),
                        key: obj.meta.key.clone(),
                        start,
                        end,
                        index: parts.len(),
                    });
                    if end >= size {
                        break;
                    }
                    start = end;
                }
            }
        }
    }
    Ok(parts)
}

/// Fetches a partition's payload, aligned to line boundaries (the function
/// executor side of §4.3). Returns the physical bytes the partition owns.
///
/// # Errors
///
/// Storage errors from the ranged reads.
pub fn read_aligned(cos: &CosClient, part: &Partition) -> Result<Bytes> {
    let meta = cos.head(&part.bucket, &part.key)?;
    let size = meta.size;
    if size == 0 {
        return Ok(Bytes::new());
    }
    let ps = meta.logical_to_physical(part.start);
    let pe = meta.logical_to_physical(part.end);
    if ps >= size {
        return Ok(Bytes::new());
    }

    // Fetch from one byte before the start so we can detect a line boundary
    // exactly at `ps`.
    let fetch_start = ps.saturating_sub(1);
    let mut fetch_end = (pe + ALIGN_SLACK).min(size);
    let mut raw = cos.get_range(&part.bucket, &part.key, fetch_start, fetch_end)?;

    // begin: offset 0 owns its first line; otherwise skip the partial line —
    // the first newline at absolute position >= ps - 1 ends it.
    let begin_abs = if ps == 0 {
        0
    } else {
        match find_newline(&raw, 0) {
            Some(i) => fetch_start + i as u64 + 1,
            None => {
                // The record straddles the entire fetched window; this
                // partition owns nothing (its line started earlier).
                extend_to_newline(cos, part, &mut raw, fetch_start, &mut fetch_end, size)?
                    .map_or(size, |abs| abs + 1)
            }
        }
    };

    // end: the partition owns every line starting before pe, so it extends
    // to the first newline at absolute position >= pe - 1 (or EOF).
    let end_abs = if pe >= size {
        size
    } else {
        let from = (pe - 1).saturating_sub(fetch_start) as usize;
        match find_newline(&raw, from) {
            Some(i) => fetch_start + i as u64 + 1,
            None => extend_to_newline(cos, part, &mut raw, fetch_start, &mut fetch_end, size)?
                .map_or(size, |abs| abs + 1),
        }
    };

    if begin_abs >= end_abs {
        return Ok(Bytes::new());
    }
    // Ensure the buffer covers end_abs (extension may have already done so).
    if end_abs > fetch_end {
        let extra = cos.get_range(&part.bucket, &part.key, fetch_end, end_abs)?;
        let mut v = raw.to_vec();
        v.extend_from_slice(&extra);
        raw = Bytes::from(v);
    }
    Ok(raw.slice((begin_abs - fetch_start) as usize..(end_abs - fetch_start) as usize))
}

fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    if from >= buf.len() {
        return None;
    }
    // lint: allow(L009) — from < buf.len() is guarded above
    buf[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| from + i)
}

/// Grows `raw` in `ALIGN_SLACK` steps until a newline at absolute position
/// `>=` the previous `fetch_end` is found, or EOF. Returns the newline's
/// absolute position, if any.
fn extend_to_newline(
    cos: &CosClient,
    part: &Partition,
    raw: &mut Bytes,
    fetch_start: u64,
    fetch_end: &mut u64,
    size: u64,
) -> std::result::Result<Option<u64>, StoreError> {
    while *fetch_end < size {
        let next_end = (*fetch_end + ALIGN_SLACK).min(size);
        let extra = cos.get_range(&part.bucket, &part.key, *fetch_end, next_end)?;
        let search_from = (*fetch_end - fetch_start) as usize;
        let mut v = raw.to_vec();
        v.extend_from_slice(&extra);
        *raw = Bytes::from(v);
        *fetch_end = next_end;
        if let Some(i) = find_newline(raw, search_from) {
            return Ok(Some(fetch_start + i as u64));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustwren_sim::{Kernel, NetworkProfile};
    use rustwren_store::ObjectStore;

    fn setup() -> (Kernel, ObjectStore, CosClient) {
        let kernel = Kernel::new();
        let store = ObjectStore::new(&kernel);
        store.create_bucket("data").expect("fresh bucket");
        let cos = CosClient::new(&store, NetworkProfile::instant(), 1);
        (kernel, store, cos)
    }

    fn discovered(size: u64, key: &str) -> DiscoveredObject {
        DiscoveredObject {
            bucket: "data".into(),
            meta: ObjectMeta {
                key: key.into(),
                size,
                logical_size: size,
                etag: 0,
                last_modified: rustwren_sim::SimInstant::ZERO,
            },
        }
    }

    #[test]
    fn per_object_granularity_without_chunk_size() {
        let objs = vec![discovered(100, "a"), discovered(50, "b")];
        let parts = partition_objects(&objs, None).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!((parts[0].start, parts[0].end), (0, 100));
        assert_eq!((parts[1].start, parts[1].end), (0, 50));
    }

    #[test]
    fn chunking_is_per_object_like_table3() {
        // 3 objects of 100, 150, 10 bytes with chunk 100:
        // ceil(100/100) + ceil(150/100) + ceil(10/100) = 1 + 2 + 1 = 4.
        let objs = vec![
            discovered(100, "a"),
            discovered(150, "b"),
            discovered(10, "c"),
        ];
        let parts = partition_objects(&objs, Some(100)).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!((parts[1].start, parts[1].end), (0, 100));
        assert_eq!((parts[2].start, parts[2].end), (100, 150));
        // Indices are global and sequential.
        assert_eq!(
            parts.iter().map(|p| p.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn empty_object_yields_one_empty_partition() {
        let parts = partition_objects(&[discovered(0, "empty")], Some(10)).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].logical_len(), 0);
    }

    #[test]
    fn zero_chunk_size_is_a_config_error() {
        let err = partition_objects(&[discovered(10, "a")], Some(0)).unwrap_err();
        assert!(matches!(err, PywrenError::Config(ref m) if m.contains("non-zero")));
    }

    #[test]
    fn partition_from_value_rejects_bad_fields() {
        let good = Partition {
            bucket: "b".into(),
            key: "k".into(),
            start: 5,
            end: 10,
            index: 3,
        };
        let negative_start = good.to_value().with("start", -1i64);
        let err = Partition::from_value(&negative_start).unwrap_err();
        assert!(err.contains("start") && err.contains("-1"), "{err}");

        let negative_index = good.to_value().with("index", -7i64);
        let err = Partition::from_value(&negative_index).unwrap_err();
        assert!(err.contains("index"), "{err}");

        let inverted = good.to_value().with("end", 2i64);
        let err = Partition::from_value(&inverted).unwrap_err();
        assert!(err.contains("precedes"), "{err}");
    }

    #[test]
    fn partition_value_roundtrip() {
        let p = Partition {
            bucket: "b".into(),
            key: "k".into(),
            start: 5,
            end: 10,
            index: 3,
        };
        assert_eq!(Partition::from_value(&p.to_value()), Ok(p));
    }

    #[test]
    fn discovery_lists_buckets_and_heads_keys() {
        let (kernel, store, cos) = setup();
        store
            .put("data", "nyc.csv", Bytes::from_static(b"a\nb\n"))
            .unwrap();
        store
            .put("data", "ams.csv", Bytes::from_static(b"c\n"))
            .unwrap();
        kernel.run("client", || {
            let objs = discover(&cos, &DataSource::bucket("data")).unwrap();
            assert_eq!(objs.len(), 2);
            let objs = discover(
                &cos,
                &DataSource::Keys(vec![ObjectRef::new("data", "nyc.csv")]),
            )
            .unwrap();
            assert_eq!(objs.len(), 1);
            assert_eq!(objs[0].meta.size, 4);
        });
    }

    #[test]
    fn discovery_of_empty_bucket_errors() {
        let (kernel, _store, cos) = setup();
        kernel.run("client", || {
            assert!(matches!(
                discover(&cos, &DataSource::bucket("data")),
                Err(PywrenError::EmptyDataSource(_))
            ));
        });
    }

    #[test]
    fn aligned_reads_tile_the_object_exactly() {
        let (kernel, store, cos) = setup();
        let text = b"first line\nsecond\nthird line here\nx\nlast\n";
        store
            .put("data", "f", Bytes::copy_from_slice(text))
            .unwrap();
        kernel.run("client", || {
            for chunk in [1u64, 3, 7, 10, 100] {
                let objs =
                    discover(&cos, &DataSource::Keys(vec![ObjectRef::new("data", "f")])).unwrap();
                let parts = partition_objects(&objs, Some(chunk)).unwrap();
                let mut all = Vec::new();
                for p in &parts {
                    all.extend_from_slice(&read_aligned(&cos, p).unwrap());
                }
                assert_eq!(all, text, "chunk={chunk}");
            }
        });
    }

    #[test]
    fn aligned_read_skips_partial_first_line() {
        let (kernel, store, cos) = setup();
        store
            .put("data", "f", Bytes::from_static(b"abcdef\nghij\n"))
            .unwrap();
        kernel.run("client", || {
            // Partition starting mid-line owns nothing before the newline.
            let p = Partition {
                bucket: "data".into(),
                key: "f".into(),
                start: 3,
                end: 12,
                index: 0,
            };
            assert_eq!(read_aligned(&cos, &p).unwrap().as_ref(), b"ghij\n");
        });
    }

    #[test]
    fn aligned_read_handles_file_without_newlines() {
        let (kernel, store, cos) = setup();
        store
            .put("data", "f", Bytes::from_static(b"0123456789"))
            .unwrap();
        kernel.run("client", || {
            let objs =
                discover(&cos, &DataSource::Keys(vec![ObjectRef::new("data", "f")])).unwrap();
            let parts = partition_objects(&objs, Some(4)).unwrap();
            let datas: Vec<_> = parts
                .iter()
                .map(|p| read_aligned(&cos, p).unwrap())
                .collect();
            // First partition owns the single unterminated record.
            assert_eq!(datas[0].as_ref(), b"0123456789");
            assert!(datas[1..].iter().all(|d| d.is_empty()));
        });
    }

    #[test]
    fn scaled_object_partitions_map_to_physical_bytes() {
        let (kernel, store, cos) = setup();
        // 4 physical lines advertised as 400 logical bytes.
        store
            .put_scaled("data", "f", Bytes::from_static(b"aa\nbb\ncc\ndd\n"), 400)
            .unwrap();
        kernel.run("client", || {
            let objs =
                discover(&cos, &DataSource::Keys(vec![ObjectRef::new("data", "f")])).unwrap();
            let parts = partition_objects(&objs, Some(100)).unwrap();
            assert_eq!(parts.len(), 4, "logical partitioning");
            let mut all = Vec::new();
            for p in &parts {
                all.extend_from_slice(&read_aligned(&cos, p).unwrap());
            }
            assert_eq!(all, b"aa\nbb\ncc\ndd\n");
        });
    }
}
