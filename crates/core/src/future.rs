//! Response futures and wait policies (Table 2 of the paper).

use crate::wire::Value;

/// Marker key identifying a result value that is really a set of futures
/// produced by an in-cloud executor (dynamic composition, §4.4).
pub const FUTURES_MARKER: &str = "__rustwren_futures__";

/// A handle to one remote task's eventual status and result in COS.
///
/// Futures are plain descriptors — (bucket, executor id, job id, task index)
/// — so they can be encoded into a [`Value`], returned from a cloud
/// function, and resolved by any client. This is what makes IBM-PyWren's
/// composability work: `get_result()` transparently follows futures returned
/// by other functions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResponseFuture {
    bucket: String,
    exec_id: String,
    job_id: u64,
    task: u32,
}

impl ResponseFuture {
    /// Creates a future descriptor.
    pub fn new(bucket: &str, exec_id: &str, job_id: u64, task: u32) -> ResponseFuture {
        ResponseFuture {
            bucket: bucket.to_owned(),
            exec_id: exec_id.to_owned(),
            job_id,
            task,
        }
    }

    /// Bucket holding this task's objects.
    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    /// The owning executor's id.
    pub fn exec_id(&self) -> &str {
        &self.exec_id
    }

    /// The job this task belongs to.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Task index within the job.
    pub fn task(&self) -> u32 {
        self.task
    }

    /// Key prefix shared by all of this job's tasks.
    pub fn job_prefix(&self) -> String {
        format!("jobs/{}/{}/", self.exec_id, self.job_id)
    }

    /// Key prefix of this task's objects.
    pub fn task_prefix(&self) -> String {
        format!("jobs/{}/{}/t{:05}", self.exec_id, self.job_id, self.task)
    }

    /// Key of this task's status object.
    pub fn status_key(&self) -> String {
        format!("{}/status", self.task_prefix())
    }

    /// Key of this task's result object.
    pub fn result_key(&self) -> String {
        format!("{}/result", self.task_prefix())
    }

    /// Human-readable label for error messages, e.g. `"e1/j2/t00003"`.
    pub fn label(&self) -> String {
        format!("{}/{}/t{:05}", self.exec_id, self.job_id, self.task)
    }

    /// Encodes the descriptor for shipping inside a result value.
    pub fn to_value(&self) -> Value {
        Value::map()
            .with("bucket", self.bucket.as_str())
            .with("exec", self.exec_id.as_str())
            .with("job", self.job_id as i64)
            .with("task", i64::from(self.task))
    }

    /// Decodes a descriptor previously produced by
    /// [`to_value`](ResponseFuture::to_value).
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_value(v: &Value) -> Result<ResponseFuture, String> {
        Ok(ResponseFuture {
            bucket: v.req_str("bucket")?.to_owned(),
            exec_id: v.req_str("exec")?.to_owned(),
            job_id: v.req_i64("job")? as u64,
            task: v.req_i64("task")? as u32,
        })
    }

    /// Wraps a set of futures into the marker value recognized by
    /// `get_result()` (composition-aware result collection).
    pub fn set_to_value(futures: &[ResponseFuture]) -> Value {
        Value::map().with(
            FUTURES_MARKER,
            Value::List(futures.iter().map(ResponseFuture::to_value).collect()),
        )
    }

    /// If `v` is a futures marker, decodes the contained futures.
    ///
    /// # Errors
    ///
    /// A message if the marker is present but malformed.
    pub fn set_from_value(v: &Value) -> Result<Option<Vec<ResponseFuture>>, String> {
        let Some(list) = v.get(FUTURES_MARKER) else {
            return Ok(None);
        };
        let items = list.as_list().ok_or("futures marker is not a list")?;
        let futures = items
            .iter()
            .map(ResponseFuture::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Some(futures))
    }
}

/// When [`crate::Executor::wait`] should unblock (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Check availability right now and return immediately.
    Always,
    /// Block until at least one *pending* task completes.
    AnyCompleted,
    /// Block until every task completes.
    #[default]
    AllCompleted,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn future() -> ResponseFuture {
        ResponseFuture::new("bkt", "e3", 2, 17)
    }

    #[test]
    fn keys_are_stable() {
        let f = future();
        assert_eq!(f.job_prefix(), "jobs/e3/2/");
        assert_eq!(f.status_key(), "jobs/e3/2/t00017/status");
        assert_eq!(f.result_key(), "jobs/e3/2/t00017/result");
        assert_eq!(f.label(), "e3/2/t00017");
    }

    #[test]
    fn value_roundtrip() {
        let f = future();
        assert_eq!(ResponseFuture::from_value(&f.to_value()), Ok(f));
    }

    #[test]
    fn from_value_rejects_malformed() {
        assert!(ResponseFuture::from_value(&Value::map()).is_err());
        assert!(ResponseFuture::from_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn futures_set_roundtrip() {
        let futures = vec![future(), ResponseFuture::new("bkt", "e3", 2, 18)];
        let v = ResponseFuture::set_to_value(&futures);
        assert_eq!(ResponseFuture::set_from_value(&v), Ok(Some(futures)));
    }

    #[test]
    fn non_marker_values_are_not_future_sets() {
        assert_eq!(ResponseFuture::set_from_value(&Value::Int(5)), Ok(None));
        assert_eq!(
            ResponseFuture::set_from_value(&Value::map().with("x", 1i64)),
            Ok(None)
        );
    }

    #[test]
    fn default_wait_policy_is_all_completed() {
        assert_eq!(WaitPolicy::default(), WaitPolicy::AllCompleted);
    }
}
