//! The executor: IBM-PyWren's first-citizen object (§4.1–§4.2).

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rustwren_analyze::{
    analyze, AnalyzeMode, CloudProfile, Diagnostic, JobPlan, Severity, SpawnProfile,
};
use rustwren_faas::{ActivationId, FaasClient, Outcome, TenantId, ThrottleSignal};
use rustwren_sim::hash::{hash2, unit_f64};
use rustwren_sim::{NetworkProfile, SimInstant};
use rustwren_store::{CosClient, OpCounters};

use crate::cloud::SimCloud;
use crate::config::{
    DataPathConfig, ExecutorConfig, RetryPolicy, SpawnStrategy, SpeculationConfig,
};
use crate::error::{PywrenError, Result};
use crate::future::{ResponseFuture, WaitPolicy};
use crate::invoker::{agent_action_name, deploy_agent, spawn_tasks};
use crate::job::{func_key, status_value, AgentPayload, TaskSpec};
use crate::partition::{discover, partition_objects, DataSource};
use crate::shuffle::{ExchangeMode, Partitioner, ShufflePlane, MAX_REDUCERS};
use crate::stats::{CosOpStats, RecoveryStats};
use crate::wire::Value;

/// Client threads used to upload task inputs to COS before invocation.
const UPLOAD_THREADS: usize = 64;

/// Consecutive status-poll failures tolerated (when retry is enabled)
/// before `wait`/`get_result` give up — rides out bounded COS outage
/// windows instead of surfacing the first transient listing error.
const MAX_POLL_FAILURES: u32 = 16;

/// Re-fetch budget for a checksum-stamped object that fails verification:
/// the stored bytes are intact, only the read was corrupted, so a refetch
/// normally heals it.
const INTEGRITY_REFETCHES: u32 = 3;

/// Options for [`Executor::map_reduce`] (§4.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapReduceOpts {
    /// Split objects into chunks of this many (logical) bytes; `None` means
    /// one partition per object ("data object granularity").
    pub chunk_size: Option<u64>,
    /// Run one reducer per source object key — the paper's
    /// `reducer_one_per_object=True`, a `reduceByKey`-like mode.
    pub reducer_one_per_object: bool,
}

/// Options for [`Executor::map_shuffle_reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleOpts {
    /// Number of parallel reducers (each owns a slice of the key space).
    /// Capped at [`MAX_REDUCERS`]; absurd values are rejected at submit.
    pub reducers: usize,
    /// Chunk size for splitting storage objects; `None` = per object.
    pub chunk_size: Option<u64>,
    /// Physical layout of map outputs: the sort-and-spill partitioned
    /// segment plane (default) or the legacy one-object-per-(map, reducer)
    /// layout.
    pub plane: ShufflePlane,
    /// How partitions travel: staged through COS (default) or pushed over
    /// the simulated VM relay tier (requires the partitioned plane).
    pub exchange: ExchangeMode,
    /// Key-to-reducer assignment: seeded hash (default) or explicit ranges
    /// (see [`Partitioner::range_from_samples`] for the sampled-histogram
    /// CloudSort setup).
    pub partitioner: Partitioner,
    /// Optional registered function applied map-side to each sorted key
    /// group (`{"k", "vs": [...]}` → combined value) before spilling —
    /// a MapReduce combiner. Requires the partitioned plane.
    pub combiner: Option<String>,
    /// Maximum sorted runs a reducer merges at once; more runs take extra
    /// merge rounds, bounding reduce-side memory. Minimum 2.
    pub merge_fanin: usize,
}

impl Default for ShuffleOpts {
    fn default() -> ShuffleOpts {
        ShuffleOpts {
            reducers: 4,
            chunk_size: None,
            plane: ShufflePlane::Partitioned,
            exchange: ExchangeMode::Cos,
            partitioner: Partitioner::Hash,
            combiner: None,
            merge_fanin: 16,
        }
    }
}

/// Options for [`Executor::get_result_with`].
#[derive(Clone, Default)]
pub struct GetResultOpts {
    /// Give up after this much virtual time.
    pub timeout: Option<Duration>,
    /// Progress callback `(done, total)`, the library's "progress bar".
    pub progress: Option<Arc<dyn Fn(usize, usize) + Send + Sync>>,
}

impl fmt::Debug for GetResultOpts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GetResultOpts")
            .field("timeout", &self.timeout)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// Per-task bookkeeping for automatic fault recovery. One entry per task
/// the executor submitted, keyed by `(job_id, task)`.
struct TaskRecovery {
    func_name: String,
    /// The inlined task descriptor, when the task's input rode inside the
    /// activation payload: retries and re-invocations must re-ship it,
    /// because no staged input object exists in COS to fall back on.
    inline: Option<Value>,
    /// Executions so far (1 after the initial invocation).
    attempts: u32,
    /// When the latest primary execution was invoked.
    invoked_at: SimInstant,
    /// The latest primary activation, where the client issued the
    /// invocation itself; `None` under remote-invoker spawning.
    activation: Option<ActivationId>,
    /// Virtual-time deadline of a scheduled re-invocation (backoff).
    retry_at: Option<SimInstant>,
    /// A speculative copy is already out for this task.
    speculated: bool,
    /// Observed completion latency (seconds) once confirmed `done`.
    done_elapsed: Option<f64>,
    /// No attempts left; the error status in COS is final.
    exhausted: bool,
}

#[derive(Default)]
struct RecoveryCounters {
    retries: AtomicU64,
    retries_exhausted: AtomicU64,
    speculative_launches: AtomicU64,
    statuses_repaired: AtomicU64,
    integrity_retries: AtomicU64,
    integrity_failures: AtomicU64,
    cleaned_objects: AtomicU64,
    lists_saved: AtomicU64,
    retries_denied_budget: AtomicU64,
}

struct ExecInner {
    cloud: SimCloud,
    config: ExecutorConfig,
    exec_id: String,
    /// Tenant namespace this executor submits under (feeds W009 and the
    /// per-tenant admission plane).
    namespace: String,
    agent_action: String,
    job_seq: AtomicU64,
    pending: parking_lot::Mutex<Vec<ResponseFuture>>,
    /// Internal-stage futures (e.g. the map phase behind a tracked reducer)
    /// that the recovery machinery watches and heals, but whose results are
    /// never returned to the caller. Without this, a map task dying under
    /// fault injection would starve its reducer forever.
    guarded: parking_lot::Mutex<Vec<ResponseFuture>>,
    /// job id → function name, for re-invoking failed tasks.
    job_funcs: parking_lot::Mutex<std::collections::HashMap<u64, String>>,
    /// (job id, task) → recovery state for the retry/speculation machinery.
    recovery: parking_lot::Mutex<std::collections::HashMap<(u64, u32), TaskRecovery>>,
    /// job id → automatic re-invocations spent so far, enforcing
    /// [`RetryPolicy::job_retry_budget`].
    job_retries: parking_lot::Mutex<std::collections::HashMap<u64, u32>>,
    counters: RecoveryCounters,
    /// Client for the polling/gathering phase (status LISTs, recovery
    /// probes, result fetches, cleanup) — its op counters feed
    /// [`CosOpStats::polling`].
    cos: CosClient,
    /// Client for the staging phase (func blob, task-input uploads,
    /// discovery) — its op counters feed [`CosOpStats::staging`].
    cos_stage: CosClient,
    faas: FaasClient,
    /// Fleet-wide 429/shed pressure observed by this executor's clients;
    /// the retry scheduler's circuit breaker reads its `open_until`
    /// deadline so backoffs never land inside a window the platform
    /// already said is full.
    throttle_signal: Arc<ThrottleSignal>,
}

/// An IBM-PyWren executor bound to one runtime and one network position.
/// Cheap to clone; clones share the pending-futures set.
///
/// Mirrors the paper's Table 2 API: [`call_async`](Executor::call_async),
/// [`map`](Executor::map), [`map_reduce`](Executor::map_reduce),
/// [`wait`](Executor::wait), [`get_result`](Executor::get_result).
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecInner>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("exec_id", &self.inner.exec_id)
            .field("runtime", &self.inner.config.runtime)
            // lint: allow(L011) — false positive: the guard is a temporary
            // dropped inside the `.field(...)` expression, not held to scope
            // end as the static order rule conservatively assumes, and the
            // trailing `.finish(`/`.field(` edges are name
            // over-approximations onto unrelated impls
            .field("pending", &self.inner.pending.lock().len())
            .finish()
    }
}

/// Builder returned by [`SimCloud::executor`].
#[derive(Debug)]
pub struct ExecutorBuilder {
    cloud: SimCloud,
    config: ExecutorConfig,
    net: Option<NetworkProfile>,
    namespace: String,
}

impl ExecutorBuilder {
    pub(crate) fn new(cloud: SimCloud) -> ExecutorBuilder {
        ExecutorBuilder {
            cloud,
            config: ExecutorConfig::default(),
            net: None,
            namespace: rustwren_faas::DEFAULT_NAMESPACE.to_owned(),
        }
    }

    /// Binds this executor to a tenant namespace: its invocations go
    /// through that tenant's quota, rate limit and admission queue on the
    /// platform (see [`rustwren_faas::TenantConfig`]).
    pub fn namespace(mut self, namespace: impl Into<String>) -> ExecutorBuilder {
        self.namespace = namespace.into();
        self
    }

    /// Selects the runtime image (the paper's
    /// `ibm_cf_executor(runtime='matplotlib')`).
    pub fn runtime(mut self, runtime: impl Into<String>) -> ExecutorBuilder {
        self.config.runtime = runtime.into();
        self
    }

    /// Selects the invocation strategy.
    pub fn spawn(mut self, spawn: SpawnStrategy) -> ExecutorBuilder {
        self.config.spawn = spawn;
        self
    }

    /// Sets the client-side status poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> ExecutorBuilder {
        self.config.poll_interval = interval;
        self
    }

    /// Sets the bucket where jobs are staged.
    pub fn storage_bucket(mut self, bucket: impl Into<String>) -> ExecutorBuilder {
        self.config.storage_bucket = bucket.into();
        self
    }

    /// Overrides the executor's network position (defaults to the cloud's
    /// client network; in-cloud executors use the data-center profile).
    pub fn network(mut self, net: NetworkProfile) -> ExecutorBuilder {
        self.net = Some(net);
        self
    }

    /// Enables automatic retry of failed tasks during polling.
    pub fn retry(mut self, policy: RetryPolicy) -> ExecutorBuilder {
        self.config.retry = policy;
        self
    }

    /// Enables speculative execution of straggler tasks.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> ExecutorBuilder {
        self.config.speculation = speculation;
        self
    }

    /// Selects the pre-flight analysis mode (defaults to the
    /// `RUSTWREN_ANALYZE` environment variable, then
    /// [`AnalyzeMode::Warn`]).
    pub fn analyze(mut self, mode: AnalyzeMode) -> ExecutorBuilder {
        self.config.analyze = mode;
        self
    }

    /// Supplies hints the analyzer cannot infer from the task list:
    /// nesting shape of recursive jobs, per-task cost estimates.
    pub fn plan_hints(mut self, hints: rustwren_analyze::PlanHints) -> ExecutorBuilder {
        self.config.plan_hints = hints;
        self
    }

    /// Configures the hot-path data optimisations: inline task inputs and
    /// the warm-container function-blob cache. Use
    /// [`DataPathConfig::staged`] to reproduce the original framework's
    /// 4-round-trips-per-task behaviour.
    pub fn data_path(mut self, data_path: DataPathConfig) -> ExecutorBuilder {
        self.config.data_path = data_path;
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: ExecutorConfig) -> ExecutorBuilder {
        self.config = config;
        self
    }

    /// Builds the executor, deploying the agent action for its runtime.
    ///
    /// # Errors
    ///
    /// Fails if the runtime image is unknown to the Docker registry, or
    /// with [`PywrenError::Config`] for a degenerate spawn strategy (zero
    /// client threads, group size or invoker threads).
    pub fn build(self) -> Result<Executor> {
        match self.config.spawn {
            SpawnStrategy::Direct { client_threads: 0 } => {
                return Err(PywrenError::Config(
                    "spawn strategy needs at least one client thread".into(),
                ));
            }
            SpawnStrategy::RemoteInvoker { group_size: 0, .. } => {
                return Err(PywrenError::Config(
                    "remote invoker group size must be non-zero".into(),
                ));
            }
            SpawnStrategy::RemoteInvoker {
                invoker_threads: 0, ..
            } => {
                return Err(PywrenError::Config(
                    "remote invoker thread count must be non-zero".into(),
                ));
            }
            _ => {}
        }
        deploy_agent(&self.cloud, &self.config.runtime)?;
        self.cloud
            .store()
            .ensure_bucket(&self.config.storage_bucket);
        let exec_id = self.cloud.next_exec_id();
        let net = self
            .net
            .unwrap_or_else(|| self.cloud.client_network().clone());
        let seed = hash2(self.cloud.inner.seed, hash2(0xE0EC, exec_id.len() as u64));
        let cos = CosClient::new(self.cloud.store(), net.clone(), seed);
        // Same timing/seed behaviour, separate op-count ledger: per-phase
        // operation budgets stay attributable (CosOpStats).
        let cos_stage = cos.clone().with_counters(OpCounters::shared());
        let throttle_signal = ThrottleSignal::new();
        let mut faas = FaasClient::new(self.cloud.functions(), net, hash2(seed, 0xFA))
            .with_throttle_signal(Arc::clone(&throttle_signal))
            .with_namespace(TenantId::new(&self.namespace));
        if !self.config.retry.honor_retry_after {
            faas = faas.without_retry_hint();
        }
        let agent_action = agent_action_name(&self.config.runtime);
        Ok(Executor {
            inner: Arc::new(ExecInner {
                cloud: self.cloud,
                config: self.config,
                exec_id,
                namespace: self.namespace,
                agent_action,
                job_seq: AtomicU64::new(1),
                pending: parking_lot::Mutex::new(Vec::new()),
                guarded: parking_lot::Mutex::new(Vec::new()),
                job_funcs: parking_lot::Mutex::new(std::collections::HashMap::new()),
                recovery: parking_lot::Mutex::new(std::collections::HashMap::new()),
                job_retries: parking_lot::Mutex::new(std::collections::HashMap::new()),
                counters: RecoveryCounters::default(),
                cos,
                cos_stage,
                faas,
                throttle_signal,
            }),
        })
    }
}

impl Executor {
    /// This executor's unique id (tracks its objects in COS).
    pub fn exec_id(&self) -> &str {
        &self.inner.exec_id
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.inner.config
    }

    /// The cloud this executor targets.
    pub fn cloud(&self) -> &SimCloud {
        &self.inner.cloud
    }

    /// Runs one function asynchronously (§4.2 `call_async`). Non-blocking:
    /// returns a future tracked by this executor.
    ///
    /// # Errors
    ///
    /// Unknown function, storage errors while staging, or invocation errors.
    pub fn call_async(&self, func: &str, input: Value) -> Result<ResponseFuture> {
        let futures = self.run_job(func, vec![TaskSpec::Value(input)])?;
        let fut = futures.into_iter().next().ok_or_else(|| {
            PywrenError::Config(format!("run_job returned no future for `{func}`"))
        })?;
        self.inner.pending.lock().push(fut.clone());
        Ok(fut)
    }

    /// Runs one function per input value in parallel (§4.2 `map`).
    /// Non-blocking.
    ///
    /// # Errors
    ///
    /// Unknown function, storage errors while staging, or invocation errors.
    pub fn map(
        &self,
        func: &str,
        inputs: impl IntoIterator<Item = Value>,
    ) -> Result<Vec<ResponseFuture>> {
        let specs: Vec<TaskSpec> = inputs.into_iter().map(TaskSpec::Value).collect();
        let futures = self.run_job(func, specs)?;
        self.inner.pending.lock().extend(futures.iter().cloned());
        Ok(futures)
    }

    /// Runs a MapReduce flow (§4.2–§4.3): discovers and partitions `source`,
    /// maps `map_func` over every partition, then runs `reduce_func` over
    /// the partial results — one reducer in total, or one per source object
    /// with [`MapReduceOpts::reducer_one_per_object`]. Non-blocking; the
    /// returned (and tracked) futures are the *reducer* outputs.
    ///
    /// # Errors
    ///
    /// Unknown functions, discovery/staging storage errors, invocation
    /// errors, or [`PywrenError::Config`] for a zero `chunk_size`.
    pub fn map_reduce(
        &self,
        map_func: &str,
        source: DataSource,
        reduce_func: &str,
        opts: MapReduceOpts,
    ) -> Result<Vec<ResponseFuture>> {
        self.map_reduce_inner(map_func, source, reduce_func, opts, None)
    }

    fn map_reduce_inner(
        &self,
        map_func: &str,
        source: DataSource,
        reduce_func: &str,
        opts: MapReduceOpts,
        extra: Option<Value>,
    ) -> Result<Vec<ResponseFuture>> {
        // Validate regardless of source: a Values source never reaches the
        // partitioner, and a silently ignored chunk_size would make the
        // same options behave differently across sources.
        if opts.chunk_size == Some(0) {
            return Err(PywrenError::Config("chunk_size must be non-zero".into()));
        }
        // Map phase.
        let mut max_object_bytes = None;
        let (map_specs, groups): (Vec<TaskSpec>, Vec<String>) = match &source {
            DataSource::Values(values) => (
                values.iter().cloned().map(TaskSpec::Value).collect(),
                values.iter().map(|_| String::new()).collect(),
            ),
            _ => {
                let objects = discover(&self.inner.cos_stage, &source)?;
                max_object_bytes = objects.iter().map(|o| o.meta.logical_size).max();
                let parts = partition_objects(&objects, opts.chunk_size)?;
                let groups = parts.iter().map(|p| p.key.clone()).collect();
                (parts.into_iter().map(TaskSpec::Partition).collect(), groups)
            }
        };
        let map_futures = self.run_job_planned(
            map_func,
            map_specs,
            extra,
            opts.chunk_size,
            max_object_bytes,
        )?;
        self.inner
            .guarded
            .lock()
            .extend(map_futures.iter().cloned());

        // Reduce phase.
        let poll = self.inner.config.reduce_poll_interval;
        let reduce_specs: Vec<TaskSpec> = if opts.reducer_one_per_object {
            // Order-preserving dedup: first-appearance order decides reducer
            // order, with a set alongside so this stays O(n) rather than the
            // former `Vec::contains` scan over every prior group.
            let mut seen_set: HashSet<&str> = HashSet::with_capacity(groups.len());
            let mut seen: Vec<String> = Vec::new();
            for g in &groups {
                if seen_set.insert(g.as_str()) {
                    seen.push(g.clone());
                }
            }
            seen.into_iter()
                .map(|g| TaskSpec::Reduce {
                    deps: map_futures
                        .iter()
                        .zip(&groups)
                        .filter(|(_, fg)| **fg == g)
                        .map(|(f, _)| f.clone())
                        .collect(),
                    group: Some(g),
                    poll,
                })
                .collect()
        } else {
            vec![TaskSpec::Reduce {
                deps: map_futures.clone(),
                group: None,
                poll,
            }]
        };
        let reduce_futures = self.run_job(reduce_func, reduce_specs)?;
        self.inner
            .pending
            .lock()
            .extend(reduce_futures.iter().cloned());
        Ok(reduce_futures)
    }

    /// [`map_reduce`](Executor::map_reduce) with per-job *extra data*: the
    /// entries of `extra` (a map value) are merged into every map task's
    /// input. This is how iterative algorithms ship small mutable state —
    /// e.g. the current k-means centroids — alongside the partitioned
    /// dataset, without re-uploading the data each round.
    ///
    /// # Errors
    ///
    /// Same as [`map_reduce`](Executor::map_reduce), plus
    /// [`PywrenError::Config`] if `extra` is not a [`Value::Map`].
    pub fn map_reduce_with_extra(
        &self,
        map_func: &str,
        source: DataSource,
        reduce_func: &str,
        opts: MapReduceOpts,
        extra: Value,
    ) -> Result<Vec<ResponseFuture>> {
        if extra.as_map().is_none() {
            return Err(PywrenError::Config("extra data must be a map value".into()));
        }
        self.map_reduce_inner(map_func, source, reduce_func, opts, Some(extra))
    }

    /// Runs a MapReduce flow **with a shuffle stage**: `map_func` runs once
    /// per input/partition and must return a list of `{"k": key, "v":
    /// value}` pairs; the agents hash-partition those pairs into
    /// `opts.reducers` COS objects; then `opts.reducers` parallel reducers
    /// each receive `{"index", "groups": {key: [values…]}}` for their share
    /// of the key space. Non-blocking; the tracked futures are the reducer
    /// outputs, in reducer-index order.
    ///
    /// This is the storage-based shuffle that §2 of the paper singles out
    /// as the open challenge of serverless MapReduce (the approach
    /// Corral/Lambada take: stage the exchange through object storage).
    ///
    /// # Errors
    ///
    /// Unknown functions, discovery/staging storage errors, invocation
    /// errors, or [`PywrenError::Config`] for an inconsistent `opts`:
    /// `reducers` zero or beyond [`MAX_REDUCERS`], a zero `chunk_size`, a
    /// range partitioner whose boundaries don't match `reducers`, a
    /// `merge_fanin` below 2, an unregistered `combiner`, or a relay
    /// exchange / combiner requested on the whole-object plane.
    pub fn map_shuffle_reduce(
        &self,
        map_func: &str,
        source: DataSource,
        reduce_func: &str,
        opts: ShuffleOpts,
    ) -> Result<Vec<ResponseFuture>> {
        if opts.reducers == 0 {
            return Err(PywrenError::Config(
                "shuffle needs at least one reducer".into(),
            ));
        }
        if opts.reducers > MAX_REDUCERS {
            return Err(PywrenError::Config(format!(
                "{} reducers exceeds the supported maximum of {MAX_REDUCERS}",
                opts.reducers
            )));
        }
        if opts.chunk_size == Some(0) {
            return Err(PywrenError::Config("chunk_size must be non-zero".into()));
        }
        if opts.merge_fanin < 2 {
            return Err(PywrenError::Config("merge_fanin must be at least 2".into()));
        }
        opts.partitioner
            .validate(opts.reducers)
            .map_err(PywrenError::Config)?;
        if opts.plane == ShufflePlane::WholeObject && opts.exchange == ExchangeMode::Relay {
            return Err(PywrenError::Config(
                "the relay exchange requires the partitioned shuffle plane".into(),
            ));
        }
        if let Some(comb) = &opts.combiner {
            if opts.plane == ShufflePlane::WholeObject {
                return Err(PywrenError::Config(
                    "a map-side combiner requires the partitioned shuffle plane".into(),
                ));
            }
            if !self.inner.cloud.registry().contains(comb) {
                return Err(PywrenError::Config(format!(
                    "combiner `{comb}` is not registered"
                )));
            }
        }
        let mut max_object_bytes = None;
        let inner_specs: Vec<TaskSpec> = match &source {
            DataSource::Values(values) => values.iter().cloned().map(TaskSpec::Value).collect(),
            _ => {
                let objects = discover(&self.inner.cos_stage, &source)?;
                max_object_bytes = objects.iter().map(|o| o.meta.logical_size).max();
                partition_objects(&objects, opts.chunk_size)?
                    .into_iter()
                    .map(TaskSpec::Partition)
                    .collect()
            }
        };
        let map_specs: Vec<TaskSpec> = inner_specs
            .into_iter()
            .map(|inner| TaskSpec::ShuffleMap {
                inner: Box::new(inner),
                reducers: opts.reducers,
                plane: opts.plane,
                exchange: opts.exchange,
                partitioner: opts.partitioner.clone(),
                combiner: opts.combiner.clone(),
            })
            .collect();
        let map_futures =
            self.run_job_planned(map_func, map_specs, None, opts.chunk_size, max_object_bytes)?;
        self.inner
            .guarded
            .lock()
            .extend(map_futures.iter().cloned());

        let poll = self.inner.config.reduce_poll_interval;
        let reduce_specs: Vec<TaskSpec> = (0..opts.reducers)
            .map(|index| TaskSpec::ShuffleReduce {
                deps: map_futures.clone(),
                index,
                poll,
                reducers: opts.reducers,
                plane: opts.plane,
                exchange: opts.exchange,
                fanin: opts.merge_fanin,
            })
            .collect();
        let reduce_futures = self.run_job(reduce_func, reduce_specs)?;
        self.inner
            .pending
            .lock()
            .extend(reduce_futures.iter().cloned());
        Ok(reduce_futures)
    }

    /// Stages one job (function blob + per-task inputs) and fires its
    /// invocations with the configured spawn strategy.
    fn run_job(&self, func: &str, specs: Vec<TaskSpec>) -> Result<Vec<ResponseFuture>> {
        self.run_job_planned(func, specs, None, None, None)
    }

    /// Builds the pre-flight [`JobPlan`] the analyzer sees for a job of
    /// `specs` submitted under the name `func`: task count, resolved spawn
    /// strategy, partition sizes, reducer fan-in, shuffle shape, plus the
    /// configured [`rustwren_analyze::PlanHints`]. `descs` are the
    /// encoded-to-be task descriptors: the largest one sizes the per-task
    /// payload estimate (W003) *regardless* of inline eligibility — an
    /// oversized descriptor lands in container memory either way (inline in
    /// the activation payload, or staged and fetched whole), and filtering
    /// to inline-eligible ones once made exactly the pathological
    /// descriptors invisible to the analyzer.
    fn plan_for(
        &self,
        func: &str,
        specs: &[TaskSpec],
        descs: &[Value],
        chunk_size: Option<u64>,
        max_object_bytes: Option<u64>,
    ) -> JobPlan {
        fn spec_bytes(spec: &TaskSpec) -> Option<u64> {
            match spec {
                TaskSpec::Partition(p) => Some(p.logical_len()),
                TaskSpec::ShuffleMap { inner, .. } => spec_bytes(inner),
                _ => None,
            }
        }
        let mut plan = JobPlan::new(func, specs.len());
        plan.spawn = match self.inner.config.spawn.resolve_for(specs.len()) {
            SpawnStrategy::Direct { client_threads } => SpawnProfile::Direct { client_threads },
            SpawnStrategy::RemoteInvoker {
                group_size,
                invoker_threads,
            } => SpawnProfile::RemoteInvoker {
                group_size,
                invoker_threads,
            },
            SpawnStrategy::Auto { .. } => unreachable!("resolve_for returns a concrete strategy"),
        };
        plan.chunk_size = chunk_size;
        plan.max_object_bytes = max_object_bytes;
        plan.partition_bytes = specs.iter().filter_map(spec_bytes).collect();
        // A lone reducer consuming every map output is the W006 hot-spot;
        // sharded reduce stages (one task per group/index) spread the fan-in.
        if let [TaskSpec::Reduce { deps, .. }] | [TaskSpec::ShuffleReduce { deps, .. }] = specs {
            plan.reducer_fanin = Some(deps.len());
        }
        // The shuffle's data-plane shape (map fan-out × partition count,
        // W008) is read off the map stage's specs.
        if let Some(TaskSpec::ShuffleMap {
            reducers,
            plane,
            exchange,
            ..
        }) = specs.first()
        {
            plan.shuffle = Some(rustwren_analyze::ShuffleShape {
                maps: specs.len(),
                partitions: *reducers,
                segmented: *plane == ShufflePlane::Partitioned,
                via_relay: *exchange == ExchangeMode::Relay,
            });
        }
        if let Some(b) = descs.iter().map(Value::encoded_len).max() {
            plan.est_payload_bytes = Some(b as u64);
        }
        plan.retry_max_attempts = self.inner.config.retry.max_attempts.max(1);
        plan.speculative_copies = if self.inner.config.speculation.enabled {
            self.inner.config.speculation.max_speculative as u32
        } else {
            0
        };
        // The submitting tenant's quota (W009): only platforms that define
        // a TenantConfig for this namespace have one.
        if let Some(quota) = self
            .inner
            .cloud
            .functions()
            .tenant_quota(&self.inner.namespace)
        {
            plan.tenant_namespace = Some(self.inner.namespace.clone());
            plan.tenant_quota = Some(quota);
        }
        plan.apply_hints(&self.inner.config.plan_hints);
        plan
    }

    /// Runs the pre-flight analyzer over an explicit [`JobPlan`] against
    /// this executor's platform limits, returning the findings without
    /// acting on them — the what-if API.
    pub fn analyze_plan(&self, plan: &JobPlan) -> Vec<Diagnostic> {
        let profile = CloudProfile::from(self.inner.cloud.functions().limits());
        analyze(plan, &profile)
    }

    /// Pre-flight gate: analyze the would-be job before anything is staged
    /// or invoked, honoring the configured [`AnalyzeMode`].
    fn preflight(
        &self,
        func: &str,
        specs: &[TaskSpec],
        descs: &[Value],
        chunk_size: Option<u64>,
        max_object_bytes: Option<u64>,
    ) -> Result<()> {
        let mode = self.inner.config.analyze;
        if mode == AnalyzeMode::Off {
            return Ok(());
        }
        let plan = self.plan_for(func, specs, descs, chunk_size, max_object_bytes);
        let diagnostics = self.analyze_plan(&plan);
        if diagnostics.is_empty() {
            return Ok(());
        }
        if mode == AnalyzeMode::Deny && diagnostics.iter().any(|d| d.severity == Severity::Error) {
            return Err(PywrenError::Plan { diagnostics });
        }
        for d in &diagnostics {
            // lint: allow(L005) — Warn mode's user-facing preflight report;
            // stderr is the contract (RUSTWREN_ANALYZE=warn)
            eprintln!("[rustwren-analyze] {d}");
        }
        Ok(())
    }

    fn run_job_planned(
        &self,
        func: &str,
        specs: Vec<TaskSpec>,
        extra: Option<Value>,
        chunk_size: Option<u64>,
        max_object_bytes: Option<u64>,
    ) -> Result<Vec<ResponseFuture>> {
        // Encode the task descriptors up front: the analyzer needs their
        // sizes (inline inputs count toward the activation payload), and
        // staging needs the values themselves.
        let descs: Vec<Value> = specs
            .iter()
            .map(|s| {
                let mut desc = s.to_value();
                if let Some(extra) = &extra {
                    desc = desc.with("extra", extra.clone());
                }
                desc
            })
            .collect();
        self.preflight(func, &specs, &descs, chunk_size, max_object_bytes)?;
        let registry = self.inner.cloud.registry();
        let Some(f) = registry.get(func) else {
            return Err(PywrenError::UnknownFunction(func.to_owned()));
        };
        let job_id = self.inner.job_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.job_funcs.lock().insert(job_id, func.to_owned());
        let bucket = &self.inner.config.storage_bucket;
        let exec_id = &self.inner.exec_id;
        let data_path = &self.inner.config.data_path;

        // 1. Stage the "serialized function" once per job (checksum-stamped
        // like every staged object).
        crate::job::put_stamped(
            &self.inner.cos_stage,
            bucket,
            &func_key(exec_id, job_id),
            &vec![0u8; f.code_size() as usize],
        )?;

        // 2. Stage the per-task inputs from a client upload pool — except
        // descriptors small enough to ride inline in the activation payload,
        // which skip COS entirely (no input PUT here, no input GET in the
        // agent).
        let threshold = data_path.inline_input_max_bytes;
        let mut payloads: Vec<AgentPayload> = Vec::with_capacity(specs.len());
        let mut uploads: Vec<(String, Bytes)> = Vec::new();
        for (task, desc) in descs.into_iter().enumerate() {
            let mut payload = AgentPayload {
                bucket: bucket.clone(),
                exec_id: exec_id.clone(),
                job_id,
                task: task as u32,
                func_name: func.to_owned(),
                inline: None,
                cache: data_path.func_cache,
                batch: data_path.batched_dep_watch,
                inline_max: data_path.inline_input_max_bytes,
            };
            if threshold > 0 && desc.encoded_len() <= threshold {
                payload.inline = Some(desc);
            } else {
                uploads.push((
                    format!("{}/input", payload.future().task_prefix()),
                    crate::wire::stamp(&desc.encode()),
                ));
            }
            payloads.push(payload);
        }
        self.parallel_upload(uploads)?;

        // 3. Invoke.
        let futures: Vec<ResponseFuture> = payloads.iter().map(AgentPayload::future).collect();
        let inlines: Vec<Option<Value>> = payloads.iter().map(|p| p.inline.clone()).collect();
        let ids = spawn_tasks(
            &self.inner.faas,
            &self.inner.config.spawn,
            &self.inner.agent_action,
            payloads,
        )?;
        let now = self.inner.cloud.kernel().now();
        let mut recovery = self.inner.recovery.lock();
        for ((f, id), inline) in futures.iter().zip(ids).zip(inlines) {
            recovery.insert(
                (f.job_id(), f.task()),
                TaskRecovery {
                    func_name: func.to_owned(),
                    inline,
                    attempts: 1,
                    invoked_at: now,
                    activation: id,
                    retry_at: None,
                    speculated: false,
                    done_elapsed: None,
                    exhausted: false,
                },
            );
        }
        drop(recovery);
        Ok(futures)
    }

    fn parallel_upload(&self, uploads: Vec<(String, Bytes)>) -> Result<()> {
        if uploads.is_empty() {
            return Ok(());
        }
        let threads = UPLOAD_THREADS.min(uploads.len());
        let mut chunks: Vec<Vec<(String, Bytes)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, u) in uploads.into_iter().enumerate() {
            chunks[i % threads].push(u);
        }
        let bucket = self.inner.config.storage_bucket.clone();
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(t, chunk)| {
                let cos = self.inner.cos_stage.clone();
                let bucket = bucket.clone();
                rustwren_sim::spawn(format!("upload-{t}"), move || {
                    for (key, data) in chunk {
                        cos.put(&bucket, &key, data)?;
                    }
                    Ok::<(), rustwren_store::StoreError>(())
                })
            })
            .collect();
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.join() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Polls which of `futures` have a status object in COS. One LIST per
    /// distinct job prefix; listed keys are matched against a precomputed
    /// status-key index so polling stays cheap at thousands of tasks.
    ///
    /// Also returns how many prefix LISTs the snapshot took, so the
    /// recovery pass — which consumes the same snapshot instead of
    /// re-listing the identical prefixes in the same cycle — can account
    /// the operations it avoided ([`RecoveryStats::lists_saved`]).
    fn poll_done(&self, futures: &[ResponseFuture]) -> Result<(HashSet<ResponseFuture>, u64)> {
        let mut prefixes: Vec<(String, String)> = Vec::new();
        let mut by_status_key: std::collections::HashMap<String, &ResponseFuture> =
            std::collections::HashMap::with_capacity(futures.len());
        for f in futures {
            let p = (f.bucket().to_owned(), f.job_prefix());
            if !prefixes.contains(&p) {
                prefixes.push(p);
            }
            by_status_key.insert(f.status_key(), f);
        }
        let listed_prefixes = prefixes.len() as u64;
        let mut done = HashSet::new();
        for (bucket, prefix) in prefixes {
            let listed = self.inner.cos.list(&bucket, &prefix)?;
            for meta in listed {
                if let Some(f) = by_status_key.get(&meta.key) {
                    done.insert((*f).clone());
                }
            }
        }
        Ok((done, listed_prefixes))
    }

    /// The automatic fault-recovery pass, run between status polls by
    /// [`wait`](Executor::wait) and [`resolve`](Executor::resolve). A no-op
    /// unless [`RetryPolicy`] or [`SpeculationConfig`] is enabled, so the
    /// default executor behaves exactly like the original IBM-PyWren
    /// client: failures surface from `get_result` and recovery is a manual
    /// [`reinvoke`](Executor::reinvoke).
    ///
    /// Three sub-passes:
    ///
    /// 1. **Classify completed statuses.** A status object's presence only
    ///    means a task *finished* — failed tasks leave `state = "error"`.
    ///    Newly completed tasks are verified once: successes record their
    ///    completion latency (feeding the speculation median); failures are
    ///    stripped of their status/result and re-scheduled with exponential
    ///    backoff while attempts remain.
    /// 2. **Handle pending tasks.** Due retries are re-invoked. Tasks with
    ///    no status are checked against the platform's activation outcome:
    ///    one that died without reporting (crash, timeout, lost status
    ///    write) is retried like any other failure — or, out of attempts,
    ///    has an error status written on its behalf so the job terminates
    ///    with a clear [`PywrenError::Task`] instead of polling forever.
    /// 3. **Speculate on stragglers.** Once enough of a job is done, tasks
    ///    out for longer than `straggler_factor ×` the median completion
    ///    time get a duplicate invocation; whichever copy finishes first
    ///    supplies the status and result (the agent never overwrites a
    ///    `done` status with an error).
    fn recover(
        &self,
        tracked: &[ResponseFuture],
        done: &mut HashSet<ResponseFuture>,
        listed_prefixes: u64,
    ) -> Result<()> {
        let retry = self.inner.config.retry.clone();
        let speculation = self.inner.config.speculation.clone();
        if !retry.enabled() && !speculation.enabled {
            return Ok(());
        }
        // The recovery pass derives "which tasks have a status" from the
        // poll tick's listing snapshot (`done`) instead of re-listing the
        // same prefixes itself — one LIST per prefix per cycle, not two.
        self.inner
            .counters
            .lists_saved
            .fetch_add(listed_prefixes, Ordering::Relaxed);
        self.classify_completed(tracked, done, &retry)?;
        self.handle_pending(tracked, done, &retry)?;
        if speculation.enabled {
            self.speculate(tracked, done, &speculation)?;
        }
        Ok(())
    }

    /// Recovery sub-pass 1: see [`recover`](Executor::recover).
    fn classify_completed(
        &self,
        tracked: &[ResponseFuture],
        done: &mut HashSet<ResponseFuture>,
        retry: &RetryPolicy,
    ) -> Result<()> {
        let now = self.inner.cloud.kernel().now();
        for f in tracked {
            if !done.contains(f) {
                continue;
            }
            let key = (f.job_id(), f.task());
            let unclassified = {
                let recovery = self.inner.recovery.lock();
                recovery
                    .get(&key)
                    .is_some_and(|r| r.done_elapsed.is_none() && !r.exhausted)
            };
            if !unclassified {
                continue;
            }
            // A status that fails its checksum stamp is classified as an
            // error finish (and so retried/exhausted below) rather than
            // re-polled forever: the object itself may be damaged, so only
            // a re-execution reliably heals it.
            let (status, integrity) =
                match crate::job::get_verified(&self.inner.cos, f.bucket(), &f.status_key()) {
                    Ok(raw) => (Value::decode(&raw).ok(), false),
                    Err(PywrenError::Integrity { .. }) => (None, true),
                    Err(_) => {
                        // Vanished between LIST and GET, or unreachable this
                        // round: treat as still pending and re-poll.
                        done.remove(f);
                        continue;
                    }
                };
            let succeeded =
                status.is_some_and(|s| s.get("state").and_then(Value::as_str) == Some("done"));
            if succeeded {
                let mut recovery = self.inner.recovery.lock();
                if let Some(r) = recovery.get_mut(&key) {
                    r.done_elapsed = Some(now.duration_since(r.invoked_at).as_secs_f64());
                }
                continue;
            }
            // The task finished with an error status.
            let retryable = retry.enabled()
                && {
                    let recovery = self.inner.recovery.lock();
                    recovery
                        .get(&key)
                        .is_some_and(|r| r.attempts < retry.max_attempts)
                }
                && self.reserve_job_retry(retry, f.job_id());
            if retryable {
                if integrity {
                    self.inner
                        .counters
                        .integrity_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Clear the stale completion markers so polling sees the
                // rerun, then back off before re-invoking.
                self.inner.cos.delete(f.bucket(), &f.status_key())?;
                self.inner.cos.delete(f.bucket(), &f.result_key())?;
                let mut recovery = self.inner.recovery.lock();
                if let Some(r) = recovery.get_mut(&key) {
                    r.retry_at = Some(self.retry_deadline(retry, key, r.attempts, now));
                }
                done.remove(f);
            } else {
                if integrity {
                    self.inner
                        .counters
                        .integrity_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
                if retry.enabled() {
                    self.inner
                        .counters
                        .retries_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                }
                let mut recovery = self.inner.recovery.lock();
                if let Some(r) = recovery.get_mut(&key) {
                    r.exhausted = true;
                }
                // Left in `done`: fetch_result surfaces the final error.
            }
        }
        Ok(())
    }

    /// Recovery sub-pass 2: see [`recover`](Executor::recover).
    fn handle_pending(
        &self,
        tracked: &[ResponseFuture],
        done: &mut HashSet<ResponseFuture>,
        retry: &RetryPolicy,
    ) -> Result<()> {
        enum Action {
            Skip,
            Reinvoke,
            Classify(ActivationId, u32),
            PresumeDead(u32),
        }
        let now = self.inner.cloud.kernel().now();
        for f in tracked {
            if done.contains(f) {
                continue;
            }
            let key = (f.job_id(), f.task());
            let action = {
                let recovery = self.inner.recovery.lock();
                match recovery.get(&key) {
                    None => Action::Skip,
                    Some(r) if r.exhausted => Action::Skip,
                    Some(r) => match (r.retry_at, r.activation) {
                        (Some(t), _) if now >= t => Action::Reinvoke,
                        (Some(_), _) => Action::Skip,
                        (None, Some(id)) if retry.enabled() => Action::Classify(id, r.attempts),
                        // No activation id (remote-invoker spawning) and no
                        // status: if the task has been out past the
                        // presumed-dead deadline, its invoker likely died
                        // before ever spawning it.
                        (None, None)
                            if retry.enabled()
                                && retry.presumed_dead_after.is_some_and(|dead| {
                                    now.duration_since(r.invoked_at) >= dead
                                }) =>
                        {
                            Action::PresumeDead(r.attempts)
                        }
                        (None, _) => Action::Skip,
                    },
                }
            };
            match action {
                Action::Skip => {}
                Action::Reinvoke => self.relaunch(f, false)?,
                Action::Classify(id, attempts) => {
                    let Some(outcome) = self.inner.cloud.functions().outcome(id) else {
                        continue; // still running
                    };
                    // The activation finished but left no status: a silent
                    // death (crash, timeout, or lost status write).
                    let retryable = match &outcome {
                        Outcome::Success => continue, // status write in flight
                        Outcome::Failed(_) | Outcome::Crashed(_) => true,
                        Outcome::TimedOut => retry.retry_timeouts,
                    };
                    if retryable
                        && attempts < retry.max_attempts
                        && self.reserve_job_retry(retry, f.job_id())
                    {
                        // Drop any partial writes (a result without a
                        // status, or a status that landed after our LIST).
                        self.inner.cos.delete(f.bucket(), &f.status_key())?;
                        self.inner.cos.delete(f.bucket(), &f.result_key())?;
                        let mut recovery = self.inner.recovery.lock();
                        if let Some(r) = recovery.get_mut(&key) {
                            r.retry_at = Some(self.retry_deadline(retry, key, r.attempts, now));
                        }
                    } else {
                        // Out of attempts (or unretryable): write the error
                        // status the agent could not, so the job terminates
                        // with a diagnosable failure instead of hanging.
                        let message = match &outcome {
                            Outcome::Failed(m) => format!("died without status: {m}"),
                            Outcome::Crashed(m) => format!("crashed: {m}"),
                            Outcome::TimedOut => "hit the platform execution time limit".to_owned(),
                            // lint: allow(L009) — match-arm exhaustiveness
                            // invariant, Success is filtered out above
                            Outcome::Success => unreachable!("handled above"),
                        };
                        let message = format!("{message} (after {attempts} attempt(s))");
                        self.repair_status(f, &key, &message, now)?;
                        if retryable {
                            self.inner
                                .counters
                                .retries_exhausted
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        done.insert(f.clone());
                    }
                }
                Action::PresumeDead(attempts) => {
                    if attempts < retry.max_attempts && self.reserve_job_retry(retry, f.job_id()) {
                        // Same treatment as a silent death: drop partials
                        // and schedule a fresh execution with backoff.
                        self.inner.cos.delete(f.bucket(), &f.status_key())?;
                        self.inner.cos.delete(f.bucket(), &f.result_key())?;
                        let mut recovery = self.inner.recovery.lock();
                        if let Some(r) = recovery.get_mut(&key) {
                            r.retry_at = Some(self.retry_deadline(retry, key, r.attempts, now));
                        }
                    } else {
                        let dead = retry.presumed_dead_after.unwrap_or_default();
                        let message = format!(
                            "presumed dead: no activation and no status after {dead:?} \
                             (after {attempts} attempt(s))"
                        );
                        self.repair_status(f, &key, &message, now)?;
                        self.inner
                            .counters
                            .retries_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                        done.insert(f.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes a (stamped) error status on behalf of a task that died
    /// without reporting one, and marks it exhausted.
    fn repair_status(
        &self,
        f: &ResponseFuture,
        key: &(u64, u32),
        message: &str,
        now: SimInstant,
    ) -> Result<()> {
        let start = {
            let recovery = self.inner.recovery.lock();
            recovery
                .get(key)
                .map_or(0.0, |r| r.invoked_at.as_secs_f64())
        };
        crate::job::put_stamped(
            &self.inner.cos,
            f.bucket(),
            &f.status_key(),
            &status_value("error", Some(message), start, now.as_secs_f64()).encode(),
        )?;
        self.inner
            .counters
            .statuses_repaired
            .fetch_add(1, Ordering::Relaxed);
        let mut recovery = self.inner.recovery.lock();
        if let Some(r) = recovery.get_mut(key) {
            r.exhausted = true;
        }
        Ok(())
    }

    /// Recovery sub-pass 3: see [`recover`](Executor::recover).
    fn speculate(
        &self,
        tracked: &[ResponseFuture],
        done: &HashSet<ResponseFuture>,
        spec: &SpeculationConfig,
    ) -> Result<()> {
        struct JobView {
            total: usize,
            done_elapsed: Vec<f64>,
            speculated: usize,
            candidates: Vec<(ResponseFuture, f64)>,
        }
        let now = self.inner.cloud.kernel().now();
        // BTreeMap so speculative relaunches are issued in job-id order,
        // not hash order (relaunch order is sim-visible).
        let mut jobs: std::collections::BTreeMap<u64, JobView> = std::collections::BTreeMap::new();
        {
            let recovery = self.inner.recovery.lock();
            for f in tracked {
                let Some(r) = recovery.get(&(f.job_id(), f.task())) else {
                    continue;
                };
                let view = jobs.entry(f.job_id()).or_insert_with(|| JobView {
                    total: 0,
                    done_elapsed: Vec::new(),
                    speculated: 0,
                    candidates: Vec::new(),
                });
                view.total += 1;
                if r.speculated {
                    view.speculated += 1;
                }
                if let Some(e) = r.done_elapsed {
                    view.done_elapsed.push(e);
                } else if !done.contains(f) && !r.exhausted && !r.speculated && r.retry_at.is_none()
                {
                    view.candidates
                        .push((f.clone(), now.duration_since(r.invoked_at).as_secs_f64()));
                }
            }
        }
        for view in jobs.into_values() {
            let done_count = view.done_elapsed.len();
            if done_count < spec.min_done.max(1)
                || (done_count as f64) < spec.done_fraction * view.total as f64
            {
                continue;
            }
            let mut elapsed = view.done_elapsed;
            elapsed.sort_by(f64::total_cmp);
            // lint: allow(L009) — non-empty: done_count >= min_done.max(1)
            let median = elapsed[elapsed.len() / 2];
            let threshold = spec.straggler_factor * median;
            let mut budget = spec.max_speculative.saturating_sub(view.speculated);
            for (f, pending_for) in view.candidates {
                if budget == 0 {
                    break;
                }
                if pending_for > threshold {
                    self.relaunch(&f, true)?;
                    budget -= 1;
                }
            }
        }
        Ok(())
    }

    /// Re-invokes one task: as a fresh primary attempt (retry), or as a
    /// duplicate backup copy (speculation) that leaves the primary's
    /// bookkeeping untouched.
    fn relaunch(&self, f: &ResponseFuture, speculative: bool) -> Result<()> {
        let key = (f.job_id(), f.task());
        let (func_name, inline) = {
            let recovery = self.inner.recovery.lock();
            let Some(r) = recovery.get(&key) else {
                return Ok(());
            };
            (r.func_name.clone(), r.inline.clone())
        };
        let payload = AgentPayload {
            bucket: f.bucket().to_owned(),
            exec_id: f.exec_id().to_owned(),
            job_id: f.job_id(),
            task: f.task(),
            func_name,
            inline,
            cache: self.inner.config.data_path.func_cache,
            batch: self.inner.config.data_path.batched_dep_watch,
            inline_max: self.inner.config.data_path.inline_input_max_bytes,
        };
        let ids = spawn_tasks(
            &self.inner.faas,
            &self.inner.config.spawn,
            &self.inner.agent_action,
            vec![payload],
        )?;
        let id = ids.into_iter().next().flatten();
        let now = self.inner.cloud.kernel().now();
        let mut recovery = self.inner.recovery.lock();
        if let Some(r) = recovery.get_mut(&key) {
            if speculative {
                r.speculated = true;
                self.inner
                    .counters
                    .speculative_launches
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                r.attempts += 1;
                r.invoked_at = now;
                r.activation = id;
                r.retry_at = None;
                self.inner.counters.retries.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Reserves one re-invocation from the job's retry budget. Returns
    /// `false` (and counts the denial) when
    /// [`RetryPolicy::job_retry_budget`] is spent — the task then surfaces
    /// its final error instead of retrying against a sick platform.
    fn reserve_job_retry(&self, retry: &RetryPolicy, job_id: u64) -> bool {
        let Some(budget) = retry.job_retry_budget else {
            return true;
        };
        let mut spent = self.inner.job_retries.lock();
        let entry = spent.entry(job_id).or_insert(0);
        if *entry >= budget {
            self.inner
                .counters
                .retries_denied_budget
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *entry += 1;
        true
    }

    /// When the next retry of task `key` should fire: jittered backoff,
    /// pushed past any open `retry_after` circuit-breaker deadline the
    /// platform has published (so a fleet under 429 pressure drains
    /// instead of amplifying).
    fn retry_deadline(
        &self,
        retry: &RetryPolicy,
        key: (u64, u32),
        attempts: u32,
        now: SimInstant,
    ) -> SimInstant {
        let at = now + self.backoff_delay(retry, key, attempts);
        if !retry.honor_retry_after {
            return at;
        }
        match self.inner.throttle_signal.open_until(now) {
            Some(open) => at.max(open),
            None => at,
        }
    }

    /// Deterministic jittered backoff before retry number `attempts` of
    /// task `key`: the jitter factor is drawn from the executor seed and
    /// the task's identity, so identically-seeded runs recover identically.
    fn backoff_delay(&self, retry: &RetryPolicy, key: (u64, u32), attempts: u32) -> Duration {
        let base = retry.base_backoff(attempts);
        let jitter = retry.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return base;
        }
        let token = hash2(
            self.inner.config.seed,
            hash2((key.0 << 20) ^ u64::from(key.1), u64::from(attempts)),
        );
        base.mul_f64(1.0 - jitter + 2.0 * jitter * unit_f64(token))
    }

    /// Counters of the automatic fault recovery performed so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            retries: self.inner.counters.retries.load(Ordering::Relaxed),
            retries_exhausted: self
                .inner
                .counters
                .retries_exhausted
                .load(Ordering::Relaxed),
            speculative_launches: self
                .inner
                .counters
                .speculative_launches
                .load(Ordering::Relaxed),
            statuses_repaired: self
                .inner
                .counters
                .statuses_repaired
                .load(Ordering::Relaxed),
            integrity_retries: self
                .inner
                .counters
                .integrity_retries
                .load(Ordering::Relaxed),
            integrity_failures: self
                .inner
                .counters
                .integrity_failures
                .load(Ordering::Relaxed),
            cleaned_objects: self.inner.counters.cleaned_objects.load(Ordering::Relaxed),
            faults_injected: self
                .inner
                .cloud
                .kernel()
                .chaos()
                .map_or(0, |c| c.stats().total()),
            lists_saved: self.inner.counters.lists_saved.load(Ordering::Relaxed),
            retries_denied_budget: self
                .inner
                .counters
                .retries_denied_budget
                .load(Ordering::Relaxed),
        }
    }

    /// The fleet-wide throttle/shed pressure observed by this executor's
    /// invocation clients (total 429s, load sheds, and the latest server
    /// `retry_after` deadline).
    pub fn throttle_signal(&self) -> &Arc<ThrottleSignal> {
        &self.inner.throttle_signal
    }

    /// Per-phase COS operation counts for this executor: client-side
    /// staging, client-side polling/gathering, and in-cloud agent traffic.
    /// The agent phase is tallied by the FaaS platform, so it covers every
    /// executor sharing the cloud; the client phases are exclusively this
    /// executor's. Benches and tests assert operation budgets from these
    /// instead of inferring them from virtual timings.
    pub fn cos_op_stats(&self) -> CosOpStats {
        CosOpStats {
            staging: self.inner.cos_stage.counters().snapshot(),
            polling: self.inner.cos.counters().snapshot(),
            agent: self.inner.cloud.functions().agent_op_counts(),
        }
    }

    /// Splits the tracked futures into `(done, pending)` under `policy`
    /// (§4.2 `wait`): `Always` returns immediately; `AnyCompleted` blocks
    /// until at least one task is done; `AllCompleted` blocks until all are.
    ///
    /// # Errors
    ///
    /// Storage errors from status polling.
    pub fn wait(&self, policy: WaitPolicy) -> Result<(Vec<ResponseFuture>, Vec<ResponseFuture>)> {
        let tracked: Vec<ResponseFuture> = self.inner.pending.lock().clone();
        if tracked.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let watched = self.with_guarded(&tracked);
        let mut poll_failures = 0u32;
        loop {
            let polled = self.poll_done(&watched).and_then(|(mut done, prefixes)| {
                self.recover(&watched, &mut done, prefixes).map(|()| done)
            });
            let done = match polled {
                Ok(done) => {
                    poll_failures = 0;
                    done
                }
                Err(_) if self.tolerate_poll_failure(&mut poll_failures) => {
                    rustwren_sim::sleep(self.inner.config.poll_interval);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let done_tracked = tracked.iter().filter(|f| done.contains(*f)).count();
            let satisfied = match policy {
                WaitPolicy::Always => true,
                WaitPolicy::AnyCompleted => done_tracked > 0,
                WaitPolicy::AllCompleted => done_tracked == tracked.len(),
            };
            if satisfied {
                let (d, p) = tracked.into_iter().partition(|f| done.contains(f));
                return Ok((d, p));
            }
            rustwren_sim::sleep(self.inner.config.poll_interval);
        }
    }

    /// Collects the results of every tracked future, in submission order,
    /// then clears the tracked set (§4.2 `get_result`). Composition-aware:
    /// results that are future-sets (returned by in-cloud executors) are
    /// awaited transparently.
    ///
    /// # Errors
    ///
    /// [`PywrenError::Task`] if any task failed, storage errors from
    /// polling/fetching.
    pub fn get_result(&self) -> Result<Vec<Value>> {
        self.get_result_with(GetResultOpts::default())
    }

    /// [`get_result`](Executor::get_result) with a timeout and/or progress
    /// callback.
    ///
    /// # Errors
    ///
    /// Additionally [`PywrenError::Timeout`] if the deadline passes.
    pub fn get_result_with(&self, opts: GetResultOpts) -> Result<Vec<Value>> {
        let futures: Vec<ResponseFuture> = std::mem::take(&mut *self.inner.pending.lock());
        let result = self.resolve(&futures, &opts);
        // The jobs behind these futures are finished (or surfaced a final
        // error); their internal stages no longer need guarding.
        self.inner.guarded.lock().clear();
        result
    }

    /// The union of `futures` and the guarded internal-stage futures, for
    /// the poll/recover loop to watch.
    fn with_guarded(&self, futures: &[ResponseFuture]) -> Vec<ResponseFuture> {
        let mut watched = futures.to_vec();
        for g in self.inner.guarded.lock().iter() {
            if !watched.contains(g) {
                watched.push(g.clone());
            }
        }
        watched
    }

    /// Resolves an explicit set of futures (used by composition and tests).
    ///
    /// # Errors
    ///
    /// Same as [`get_result_with`](Executor::get_result_with).
    pub fn resolve(&self, futures: &[ResponseFuture], opts: &GetResultOpts) -> Result<Vec<Value>> {
        if futures.is_empty() {
            return Ok(Vec::new());
        }
        let deadline = opts.timeout.map(|t| self.inner.cloud.kernel().now() + t);
        let watched = self.with_guarded(futures);
        let mut poll_failures = 0u32;
        loop {
            let polled = self.poll_done(&watched).and_then(|(mut done, prefixes)| {
                self.recover(&watched, &mut done, prefixes).map(|()| done)
            });
            let done = match polled {
                Ok(done) => {
                    poll_failures = 0;
                    done
                }
                Err(_) if self.tolerate_poll_failure(&mut poll_failures) => {
                    rustwren_sim::sleep(self.inner.config.poll_interval);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let done_tracked = futures.iter().filter(|f| done.contains(*f)).count();
            if let Some(cb) = &opts.progress {
                cb(done_tracked, futures.len());
            }
            if done_tracked == futures.len() {
                break;
            }
            if let Some(d) = deadline {
                if self.inner.cloud.kernel().now() >= d {
                    return Err(PywrenError::Timeout {
                        done: done_tracked,
                        pending: futures.len() - done_tracked,
                    });
                }
            }
            rustwren_sim::sleep(self.inner.config.poll_interval);
        }

        // Download results with a client thread pool, as the Python client
        // does — serial WAN fetches would dwarf the job itself at scale.
        let n = futures.len();
        if n == 1 {
            return Ok(vec![self.fetch_result(&futures[0], opts)?]);
        }
        let threads = n.min(UPLOAD_THREADS);
        let mut chunks: Vec<Vec<(usize, ResponseFuture)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, f) in futures.iter().enumerate() {
            chunks[i % threads].push((i, f.clone()));
        }
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(t, chunk)| {
                let exec = self.clone();
                let opts = opts.clone();
                rustwren_sim::spawn(format!("results-{t}"), move || {
                    chunk
                        .into_iter()
                        .map(|(i, f)| exec.fetch_result(&f, &opts).map(|v| (i, v)))
                        .collect::<Result<Vec<_>>>()
                })
            })
            .collect();
        let mut slots: Vec<Option<Value>> = vec![None; n];
        let mut first_err = None;
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, v) in pairs {
                        slots[i] = Some(v);
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.ok_or_else(|| PywrenError::Task {
                    task: format!("result #{i}"),
                    message: "download pool returned no value for this index".to_owned(),
                })
            })
            .collect()
    }

    /// Whether a storage failure during status polling should be ridden
    /// out: only when automatic retry is on, and only for up to
    /// [`MAX_POLL_FAILURES`] consecutive rounds.
    fn tolerate_poll_failure(&self, poll_failures: &mut u32) -> bool {
        if !self.inner.config.retry.enabled() || *poll_failures >= MAX_POLL_FAILURES {
            return false;
        }
        *poll_failures += 1;
        true
    }

    /// Reads a checksum-stamped staged object, re-fetching up to
    /// [`INTEGRITY_REFETCHES`] times on stamp failures (the stored object is
    /// intact; only the read path corrupts). Healed refetches count as
    /// integrity retries; an exhausted budget surfaces the typed
    /// [`PywrenError::Integrity`] error and counts as an integrity failure.
    fn fetch_verified(&self, bucket: &str, key: &str) -> Result<Bytes> {
        let mut integrity_attempts = 0u32;
        let mut storage_attempts = 0u32;
        loop {
            match crate::job::get_verified(&self.inner.cos, bucket, key) {
                Ok(payload) => {
                    if integrity_attempts > 0 {
                        self.inner
                            .counters
                            .integrity_retries
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(payload);
                }
                Err(e @ PywrenError::Integrity { .. }) => {
                    integrity_attempts += 1;
                    if integrity_attempts > INTEGRITY_REFETCHES {
                        self.inner
                            .counters
                            .integrity_failures
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                }
                // With retry on, ride out transient storage failures the
                // same way the polling loop does — the COS client's own
                // per-request retries have already been exhausted here.
                Err(e @ PywrenError::Storage(_)) if self.inner.config.retry.enabled() => {
                    storage_attempts += 1;
                    if storage_attempts > INTEGRITY_REFETCHES {
                        return Err(e);
                    }
                    rustwren_sim::sleep(self.inner.config.poll_interval);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches one completed task's result, following future-set markers.
    fn fetch_result(&self, f: &ResponseFuture, opts: &GetResultOpts) -> Result<Value> {
        let status_raw = self.fetch_verified(f.bucket(), &f.status_key())?;
        let status = Value::decode(&status_raw)?;
        let state = status.req_str("state").map_err(|m| PywrenError::Task {
            task: f.label(),
            message: m,
        })?;
        if state != "done" {
            return Err(PywrenError::Task {
                task: f.label(),
                message: status
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
                    .to_owned(),
            });
        }
        let value = match status.get("result") {
            // Small results ride inside the status object — no separate
            // `…/result` GET (nor the object itself) exists for them.
            Some(v) => v.clone(),
            None => {
                let raw = self.fetch_verified(f.bucket(), &f.result_key())?;
                Value::decode(&raw)?
            }
        };
        match ResponseFuture::set_from_value(&value) {
            Ok(Some(subfutures)) => {
                // Composition-aware: transparently await the sub-job. A
                // single-future set (e.g. one sequence stage) yields its
                // bare value; fan-outs yield the list.
                let mut sub = self.resolve(&subfutures, opts)?;
                match sub.pop() {
                    Some(only) if sub.is_empty() => Ok(only),
                    Some(v) => {
                        sub.push(v);
                        Ok(Value::List(sub))
                    }
                    None => Ok(Value::List(sub)),
                }
            }
            Ok(None) => Ok(value),
            Err(m) => Err(PywrenError::Task {
                task: f.label(),
                message: format!("malformed future set: {m}"),
            }),
        }
    }

    /// Number of futures currently tracked for `get_result`.
    pub fn pending_count(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Deletes every COS object this executor staged (function blobs,
    /// inputs, statuses, results, shuffle partitions) — PyWren's `clean()`.
    /// Returns how many objects were removed. Pending futures are cleared;
    /// resolving previously returned futures afterwards will fail.
    ///
    /// # Errors
    ///
    /// Storage errors from listing or deleting.
    pub fn clean(&self) -> Result<usize> {
        let bucket = &self.inner.config.storage_bucket;
        let prefix = format!("jobs/{}/", self.inner.exec_id);
        let keys: Vec<String> = self
            .inner
            .cos
            .list(bucket, &prefix)?
            .into_iter()
            .map(|m| m.key)
            .collect();
        for key in &keys {
            self.inner.cos.delete(bucket, key)?;
        }
        self.inner
            .counters
            .cleaned_objects
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.inner.pending.lock().clear();
        self.inner.guarded.lock().clear();
        Ok(keys.len())
    }

    /// Re-invokes tasks of this executor (e.g. after a
    /// [`PywrenError::Task`] from `get_result`): staged inputs are still in
    /// COS and inline inputs are re-shipped from the executor's retained
    /// descriptors, so the agents simply run again, overwriting the old
    /// status and result. The futures are tracked again for `get_result`.
    ///
    /// # Errors
    ///
    /// [`PywrenError::UnknownFunction`] for futures from other executors
    /// (their job → function mapping is unknown here), storage errors while
    /// clearing old statuses, or invocation errors.
    pub fn reinvoke(&self, futures: &[ResponseFuture]) -> Result<()> {
        let mut payloads = Vec::with_capacity(futures.len());
        for f in futures {
            let func_name = self
                .inner
                .job_funcs
                .lock()
                .get(&f.job_id())
                .cloned()
                .ok_or_else(|| {
                    PywrenError::UnknownFunction(format!(
                        "job {} was not submitted by this executor",
                        f.job_id()
                    ))
                })?;
            // An inline task has no staged input to fall back on; re-ship
            // the descriptor retained at submit time.
            let inline = {
                let recovery = self.inner.recovery.lock();
                recovery
                    .get(&(f.job_id(), f.task()))
                    .and_then(|r| r.inline.clone())
            };
            // Clear stale completion markers so polling sees the rerun.
            self.inner.cos.delete(f.bucket(), &f.status_key())?;
            self.inner.cos.delete(f.bucket(), &f.result_key())?;
            payloads.push(AgentPayload {
                bucket: f.bucket().to_owned(),
                exec_id: f.exec_id().to_owned(),
                job_id: f.job_id(),
                task: f.task(),
                func_name,
                inline,
                cache: self.inner.config.data_path.func_cache,
                batch: self.inner.config.data_path.batched_dep_watch,
                inline_max: self.inner.config.data_path.inline_input_max_bytes,
            });
        }
        let ids = spawn_tasks(
            &self.inner.faas,
            &self.inner.config.spawn,
            &self.inner.agent_action,
            payloads.clone(),
        )?;
        // A manual reinvocation resets the task's recovery bookkeeping: it
        // is a fresh first attempt, not a counted automatic retry.
        let now = self.inner.cloud.kernel().now();
        let mut recovery = self.inner.recovery.lock();
        for (payload, id) in payloads.into_iter().zip(ids) {
            recovery.insert(
                (payload.job_id, payload.task),
                TaskRecovery {
                    func_name: payload.func_name,
                    inline: payload.inline,
                    attempts: 1,
                    invoked_at: now,
                    activation: id,
                    retry_at: None,
                    speculated: false,
                    done_elapsed: None,
                    exhausted: false,
                },
            );
        }
        drop(recovery);
        self.inner.pending.lock().extend(futures.iter().cloned());
        Ok(())
    }

    /// Fetches the execution metadata the agents recorded in each task's
    /// status object ("some metadata about the status of the invocations,
    /// such as execution times, are stored back in COS" — §4.2). The tasks
    /// must have completed.
    ///
    /// # Errors
    ///
    /// Storage errors, or [`PywrenError::Task`] for statuses that are
    /// missing or malformed.
    pub fn task_timings(&self, futures: &[ResponseFuture]) -> Result<Vec<TaskTiming>> {
        futures
            .iter()
            .map(|f| {
                let raw = self.fetch_verified(f.bucket(), &f.status_key())?;
                let status = Value::decode(&raw)?;
                let field = |k: &str| {
                    status
                        .get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| PywrenError::Task {
                            task: f.label(),
                            message: format!("status missing field `{k}`"),
                        })
                };
                Ok(TaskTiming {
                    task: f.label(),
                    start_secs: field("start")?,
                    end_secs: field("end")?,
                    succeeded: status.get("state").and_then(Value::as_str) == Some("done"),
                })
            })
            .collect()
    }
}

/// Per-task execution metadata recovered from a status object.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTiming {
    /// Task label, e.g. `"e1/2/t00003"`.
    pub task: String,
    /// Virtual time the function body started, in seconds.
    pub start_secs: f64,
    /// Virtual time the function body ended, in seconds.
    pub end_secs: f64,
    /// Whether the task reported success.
    pub succeeded: bool,
}

impl TaskTiming {
    /// Execution duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_secs - self.start_secs).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TaskSpec;
    use crate::task::TaskCtx;

    /// Regression (W003 blind spot): descriptors above the inline-payload
    /// threshold must still size `est_payload_bytes` — they land in
    /// container memory whether inlined or staged-and-fetched.
    #[test]
    fn plan_counts_oversized_descriptors_toward_payload_estimate() {
        let cloud = crate::SimCloud::builder().seed(5).build();
        cloud.register_fn("id", |_ctx: &TaskCtx, v: Value| Ok(v));
        cloud.run(|| {
            let exec = cloud.executor().build().unwrap();
            let big = Value::bytes(vec![7u8; 2 * 1024 * 1024]);
            let small = Value::Int(1);
            let specs = [TaskSpec::Value(small.clone()), TaskSpec::Value(big.clone())];
            let descs = [small.clone(), big.clone()];
            let plan = exec.plan_for("id", &specs, &descs, None, None);
            let est = plan.est_payload_bytes.expect("estimate present");
            assert!(
                est >= 2 * 1024 * 1024,
                "largest descriptor must size the estimate, got {est}"
            );

            // Small-only jobs keep a small estimate — the fix widens what
            // is counted, not the numbers themselves.
            let plan = exec.plan_for("id", &specs[..1], &descs[..1], None, None);
            assert!(plan.est_payload_bytes.expect("estimate") < 1024);
        });
    }

    /// W009 wiring: an executor bound to a configured tenant namespace
    /// stamps that tenant's quota onto the plan; the default namespace on
    /// a tenant-less platform stamps nothing.
    #[test]
    fn plan_carries_the_submitting_tenants_quota() {
        let platform = rustwren_faas::PlatformConfig {
            tenants: vec![rustwren_faas::TenantConfig::new("acme", 2)],
            ..rustwren_faas::PlatformConfig::default()
        };
        let cloud = crate::SimCloud::builder()
            .seed(5)
            .platform(platform)
            .build();
        cloud.register_fn("id", |_ctx: &TaskCtx, v: Value| Ok(v));
        cloud.run(|| {
            let exec = cloud.executor().namespace("acme").build().unwrap();
            let specs: Vec<TaskSpec> = (0..5).map(|i| TaskSpec::Value(Value::Int(i))).collect();
            let descs: Vec<Value> = (0..5).map(Value::Int).collect();
            let plan = exec.plan_for("id", &specs, &descs, None, None);
            assert_eq!(plan.tenant_namespace.as_deref(), Some("acme"));
            assert_eq!(plan.tenant_quota, Some(2));
            assert!(
                exec.analyze_plan(&plan)
                    .iter()
                    .any(|d| d.rule == rustwren_analyze::Rule::W009),
                "a 5-task wave against a quota of 2 must trip W009"
            );

            // Default namespace with no TenantConfig: no quota on the plan.
            let exec = cloud.executor().build().unwrap();
            let plan = exec.plan_for("id", &specs, &descs, None, None);
            assert_eq!(plan.tenant_quota, None);
            assert!(
                !exec
                    .analyze_plan(&plan)
                    .iter()
                    .any(|d| d.rule == rustwren_analyze::Rule::W009),
                "no tenant, no W009"
            );
        });
    }
}
