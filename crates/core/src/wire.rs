//! The wire format: IBM-PyWren's "pickle".
//!
//! PyWren serializes user functions and data with Python's pickle and stages
//! the bytes in COS. Rust cannot serialize closures, so the reproduction
//! ships a *registry key* plus a self-describing [`Value`] — everything else
//! about the payload path (encode → PUT → invoke → GET → decode → execute)
//! is identical. The codec is a compact tagged binary format implemented
//! from scratch so it can be tested and benchmarked as part of the system.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Maximum nesting depth accepted by the decoder (guards against stack
/// exhaustion on malformed input).
const MAX_DEPTH: usize = 100;

/// A dynamically-typed value, the unit of data exchanged between the client
/// and function executors.
///
/// # Examples
///
/// ```
/// use rustwren_core::wire::Value;
///
/// let v = Value::from(vec![Value::from(3i64), Value::from(6i64), Value::from(9i64)]);
/// let bytes = v.encode();
/// assert_eq!(Value::decode(&bytes)?, v);
/// # Ok::<(), rustwren_core::wire::WireError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An ordered list.
    List(Vec<Value>),
    /// A string-keyed map with deterministic (sorted) iteration order.
    Map(BTreeMap<String, Value>),
}

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-value.
    UnexpectedEof,
    /// Unknown type tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the top-level value.
    TrailingBytes(usize),
    /// Nesting exceeded the decoder's depth limit.
    TooDeep,
    /// A payload expected to carry a checksum stamp did not start with the
    /// stamp magic (or was too short to hold one) — typically a truncated
    /// response.
    MissingStamp,
    /// The payload's content checksum did not match its stamp: the bytes
    /// were corrupted between write and read.
    ChecksumMismatch {
        /// Checksum recorded in the stamp at write time.
        expected: u64,
        /// Checksum computed over the received payload.
        actual: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => f.write_str("unexpected end of input"),
            WireError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            WireError::BadUtf8 => f.write_str("invalid utf-8 in string value"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after value"),
            WireError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH} levels"),
            WireError::MissingStamp => {
                f.write_str("payload is not checksum-stamped (truncated or foreign bytes)")
            }
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stamped {expected:#018x}, computed {actual:#018x}"
            ),
        }
    }
}

impl Error for WireError {}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_MAP: u8 = 7;

/// Leading byte of a checksum-stamped payload. Deliberately outside the
/// value tag range (0–7), so stamped bytes can never decode as a bare
/// [`Value`] by accident — and a stamp stripped twice fails loudly.
pub const STAMP_MAGIC: u8 = 0xC5;

/// Bytes of stamp overhead: the magic plus a little-endian u64 checksum.
pub const STAMP_LEN: usize = 9;

/// Content checksum used by [`stamp`]/[`verify_stamped`]: a 64-bit FNV-1a
/// fold finished with an avalanche mix, so single-byte flips and
/// truncations change the digest with overwhelming probability. Not
/// cryptographic — it detects corruption, not tampering.
pub fn checksum64(data: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche so length-extension-ish patterns don't collide.
    rustwren_sim::hash::mix64(h ^ (data.len() as u64))
}

/// Prefixes `payload` with [`STAMP_MAGIC`] and its [`checksum64`], producing
/// the on-store representation of every staged object (func, data, status,
/// result). Verified on read by [`verify_stamped`].
pub fn stamp(payload: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(STAMP_LEN + payload.len());
    out.push(STAMP_MAGIC);
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Bytes::from(out)
}

/// Checks a stamped payload and returns the inner bytes.
///
/// # Errors
///
/// [`WireError::MissingStamp`] when the bytes are too short or don't start
/// with [`STAMP_MAGIC`] (e.g. a truncated response), and
/// [`WireError::ChecksumMismatch`] when the payload's recomputed checksum
/// disagrees with the stamp.
pub fn verify_stamped(data: &[u8]) -> Result<&[u8], WireError> {
    if data.first() != Some(&STAMP_MAGIC) {
        return Err(WireError::MissingStamp);
    }
    let Ok(header) = data
        .get(1..STAMP_LEN)
        .ok_or(WireError::MissingStamp)?
        .try_into()
    else {
        return Err(WireError::MissingStamp);
    };
    let expected = u64::from_le_bytes(header);
    let payload = data.get(STAMP_LEN..).ok_or(WireError::MissingStamp)?;
    let actual = checksum64(payload);
    if actual != expected {
        return Err(WireError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

impl Value {
    /// Builds a `Value::Bytes` (explicit to avoid ambiguity with lists).
    pub fn bytes(data: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(data.into())
    }

    /// Builds an empty map value.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Inserts into a map value (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a map.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Map(m) => {
                m.insert(key.to_owned(), value.into());
            }
            other => panic!("Value::with on non-map {other:?}"),
        }
        self
    }

    /// Serializes to bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        Bytes::from(out)
    }

    /// Exact number of bytes [`encode`](Value::encode) will produce,
    /// without allocating — used to decide cheaply whether a task
    /// descriptor fits the inline-payload threshold.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::List(v) => 5 + v.iter().map(Value::encoded_len).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.encoded_len())
                    .sum::<usize>()
            }
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(TAG_BYTES);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::List(v) => {
                out.push(TAG_LIST);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for item in v {
                    item.encode_into(out);
                }
            }
            Value::Map(m) => {
                out.push(TAG_MAP);
                out.extend_from_slice(&(m.len() as u32).to_le_bytes());
                for (k, v) in m {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.encode_into(out);
                }
            }
        }
    }

    /// Deserializes a value, requiring the input to be fully consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Value, WireError> {
        let mut cursor = Cursor { data, pos: 0 };
        let v = cursor.read_value(0)?;
        if cursor.pos != data.len() {
            return Err(WireError::TrailingBytes(data.len() - cursor.pos));
        }
        Ok(v)
    }

    // ---- accessors -------------------------------------------------------

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, accepting `Int` with exact conversion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The raw bytes, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The items, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The map, if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks a key up in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    // ---- checked extraction (for agent/task plumbing) --------------------

    /// Extracts a required string field from a map value.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing/mistyped field.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Extracts a required integer field from a map value.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing/mistyped field.
    pub fn req_i64(&self, key: &str) -> Result<i64, String> {
        self.get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| format!("missing or non-int field `{key}`"))
    }

    /// Extracts a required list field from a map value.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing/mistyped field.
    pub fn req_list(&self, key: &str) -> Result<&[Value], String> {
        self.get(key)
            .and_then(Value::as_list)
            .ok_or_else(|| format!("missing or non-list field `{key}`"))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(v) => {
                f.write_str("[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Value {
        Value::Map(m)
    }
}
impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::List(iter.into_iter().collect())
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEof)?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(WireError::UnexpectedEof)
    }

    fn read_u32(&mut self) -> Result<u32, WireError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| WireError::UnexpectedEof)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_str(&mut self) -> Result<String, WireError> {
        let len = self.read_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn read_value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.read_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => Ok(Value::Bool(self.read_u8()? != 0)),
            TAG_INT => {
                let b = self.take(8)?;
                let mut arr = [0u8; 8];
                arr.copy_from_slice(b);
                Ok(Value::Int(i64::from_le_bytes(arr)))
            }
            TAG_FLOAT => {
                let b = self.take(8)?;
                let mut arr = [0u8; 8];
                arr.copy_from_slice(b);
                Ok(Value::Float(f64::from_le_bytes(arr)))
            }
            TAG_STR => Ok(Value::Str(self.read_str()?)),
            TAG_BYTES => {
                let len = self.read_u32()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            TAG_LIST => {
                let count = self.read_u32()? as usize;
                let mut v = Vec::new();
                for _ in 0..count {
                    v.push(self.read_value(depth + 1)?);
                }
                Ok(Value::List(v))
            }
            TAG_MAP => {
                let count = self.read_u32()? as usize;
                let mut m = BTreeMap::new();
                for _ in 0..count {
                    let k = self.read_str()?;
                    m.insert(k, self.read_value(depth + 1)?);
                }
                Ok(Value::Map(m))
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = v.encode();
        assert_eq!(Value::decode(&enc).expect("decodes"), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(-42));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Float(3.25));
        roundtrip(Value::Str("héllo wörld".into()));
        roundtrip(Value::bytes(vec![0u8, 255, 7]));
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(
            Value::map()
                .with(
                    "cities",
                    Value::from(vec![Value::from("nyc"), Value::from("ams")]),
                )
                .with(
                    "sizes",
                    Value::from(vec![Value::from(1i64), Value::from(2i64)]),
                )
                .with("nested", Value::map().with("x", Value::Null)),
        );
    }

    #[test]
    fn empty_containers_roundtrip() {
        roundtrip(Value::List(Vec::new()));
        roundtrip(Value::map());
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Bytes(Vec::new()));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = Value::from("hello").encode();
        for cut in 0..enc.len() {
            assert!(
                Value::decode(&enc[..cut]).is_err(),
                "decoded a truncation at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = Value::Int(5).encode().to_vec();
        enc.push(0);
        assert_eq!(Value::decode(&enc), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert_eq!(Value::decode(&[0xAB]), Err(WireError::BadTag(0xAB)));
    }

    #[test]
    fn decode_rejects_deep_nesting() {
        // A list nested (MAX_DEPTH + 2) deep.
        let mut enc = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            enc.push(TAG_LIST);
            enc.extend_from_slice(&1u32.to_le_bytes());
        }
        enc.push(TAG_NULL);
        assert_eq!(Value::decode(&enc), Err(WireError::TooDeep));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut enc = vec![TAG_STR];
        enc.extend_from_slice(&2u32.to_le_bytes());
        enc.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Value::decode(&enc), Err(WireError::BadUtf8));
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("x").as_i64(), None);
    }

    #[test]
    fn map_get_and_required_fields() {
        let v = Value::map().with("name", "nyc").with("size", 10i64);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("nyc"));
        assert_eq!(v.req_str("name"), Ok("nyc"));
        assert_eq!(v.req_i64("size"), Ok(10));
        assert!(v.req_str("missing").is_err());
        assert!(v.req_str("size").is_err());
        assert!(v.req_list("name").is_err());
    }

    #[test]
    fn display_is_readable() {
        let v = Value::map().with("k", Value::from(vec![Value::Int(1), Value::Null]));
        assert_eq!(v.to_string(), "{\"k\": [1, null]}");
    }

    #[test]
    #[should_panic(expected = "non-map")]
    fn with_on_non_map_panics() {
        let _ = Value::Int(1).with("k", 2i64);
    }

    #[test]
    fn encoded_len_matches_actual() {
        let v = Value::map()
            .with("a", Value::from(vec![Value::Int(1), Value::from("xy")]))
            .with("b", Value::bytes(vec![1, 2, 3]));
        assert_eq!(v.encoded_len(), v.encode().len());
    }

    #[test]
    fn stamp_roundtrips() {
        let payload = Value::map().with("state", "done").encode();
        let stamped = stamp(&payload);
        assert_eq!(stamped.len(), payload.len() + STAMP_LEN);
        assert_eq!(stamped[0], STAMP_MAGIC);
        assert_eq!(verify_stamped(&stamped).unwrap(), payload.as_ref());
    }

    #[test]
    fn stamp_detects_any_single_byte_flip() {
        let payload = b"the quick brown fox".to_vec();
        let stamped = stamp(&payload);
        for i in 0..stamped.len() {
            let mut bad = stamped.to_vec();
            bad[i] ^= 0x5A;
            assert!(verify_stamped(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn stamp_detects_truncation_at_every_length() {
        let stamped = stamp(&Value::Int(42).encode());
        for cut in 0..stamped.len() {
            let err = verify_stamped(&stamped[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::MissingStamp | WireError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn stamp_magic_is_outside_value_tag_range() {
        // Stamped bytes must never decode as a plain value.
        assert_eq!(
            Value::decode(&stamp(&Value::Null.encode())),
            Err(WireError::BadTag(STAMP_MAGIC))
        );
    }

    #[test]
    fn empty_payload_stamps_and_verifies() {
        let stamped = stamp(&[]);
        assert_eq!(verify_stamped(&stamped).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn checksum_distinguishes_length_patterns() {
        assert_ne!(checksum64(&[0u8; 8]), checksum64(&[0u8; 9]));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
    }
}
