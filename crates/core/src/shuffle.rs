//! The partitioned shuffle data plane (ROADMAP item 2).
//!
//! §2 of the paper singles out the shuffle as the open challenge of
//! serverless MapReduce. The original plane here was the naive
//! storage-based exchange: every map wrote one whole COS object per
//! reducer (even empty ones) and every reducer read every map output
//! whole, grouping everything in one in-memory `BTreeMap`. This module
//! holds the machinery for the real plane:
//!
//! * [`Partitioner`] — pluggable hash/range key partitioning (range
//!   boundaries come from a sampled key histogram).
//! * [`ShufflePlane`] — the whole-object legacy layout vs the partitioned
//!   segment layout (one object per *map*, sliced per reducer, with empty
//!   partitions elided and recorded in the map's status manifest).
//! * [`ExchangeMode`] — COS-mediated exchange vs the direct
//!   container-to-container relay tier ablation
//!   ([`rustwren_store::RelayTier`]).
//! * [`merge_runs`](crate::shuffle::merge_runs) — the reduce side's
//!   streaming multi-round k-way merge with a bounded fan-in, replacing
//!   the hold-everything re-sort.
//!
//! The wire-level write/fetch protocol lives in [`crate::job`]; this
//! module is the pure, separately-testable core.

use crate::wire::Value;

/// Hard ceiling on [`crate::ShuffleOpts::reducers`]: beyond this the
/// per-map partition bookkeeping (and any real platform's request budget)
/// stops making sense, so submission fails fast with a typed
/// [`crate::PywrenError::Config`] instead of melting down mid-run.
pub const MAX_REDUCERS: usize = 100_000;

/// Which physical layout the map outputs use in the exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ShufflePlane {
    /// One segment object per *map task*: per-reducer slices are sorted,
    /// optionally combined, individually checksum-stamped and concatenated;
    /// the slice index (offset/length, or the slice inlined whole for tiny
    /// spills) rides in the map's status manifest. Empty partitions are
    /// elided and recorded, so reducers can tell "never written" from
    /// "lost" under chaos.
    #[default]
    Partitioned,
    /// The legacy layout: one whole COS object per `(map, reducer)` pair,
    /// unsorted. Kept for equivalence testing and as the ablation baseline.
    WholeObject,
}

/// How map outputs physically travel to reducers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExchangeMode {
    /// Stage the exchange through COS (the approach Corral/Lambada take;
    /// the paper's storage-based shuffle).
    #[default]
    Cos,
    /// Push partitions through the simulated low-latency relay tier —
    /// the VM-driven direct exchange of *A Milestone for FaaS Pipelines*.
    /// Requires [`ShufflePlane::Partitioned`].
    Relay,
}

impl ShufflePlane {
    /// Wire discriminator carried in shuffle task descriptors.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            ShufflePlane::Partitioned => "seg",
            ShufflePlane::WholeObject => "whole",
        }
    }

    /// Decodes [`ShufflePlane::as_str`]; absent (payloads from older
    /// clients) means the legacy whole-object layout.
    pub(crate) fn from_wire(s: Option<&str>) -> Result<ShufflePlane, String> {
        match s {
            None => Ok(ShufflePlane::WholeObject),
            Some("seg") => Ok(ShufflePlane::Partitioned),
            Some("whole") => Ok(ShufflePlane::WholeObject),
            Some(other) => Err(format!("unknown shuffle plane `{other}`")),
        }
    }
}

impl ExchangeMode {
    /// Wire discriminator carried in shuffle task descriptors.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            ExchangeMode::Cos => "cos",
            ExchangeMode::Relay => "relay",
        }
    }

    /// Decodes [`ExchangeMode::as_str`]; absent means COS-mediated.
    pub(crate) fn from_wire(s: Option<&str>) -> Result<ExchangeMode, String> {
        match s {
            None | Some("cos") => Ok(ExchangeMode::Cos),
            Some("relay") => Ok(ExchangeMode::Relay),
            Some(other) => Err(format!("unknown exchange mode `{other}`")),
        }
    }
}

/// Assigns each shuffle key to a reducer partition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Partitioner {
    /// Seeded hash of the key bytes — uniform for arbitrary key spaces.
    #[default]
    Hash,
    /// Ordered ranges split at `boundaries` (ascending, `reducers - 1` of
    /// them): reducer `i` owns keys in `[boundaries[i-1], boundaries[i])`,
    /// so concatenating reducer outputs in index order yields a globally
    /// sorted key space — the CloudSort layout.
    Range {
        /// Ascending split points; key `k` goes to the number of
        /// boundaries `<= k`.
        boundaries: Vec<String>,
    },
}

impl Partitioner {
    /// The reducer index for `key` out of `reducers` partitions.
    pub fn bucket_of(&self, key: &str, reducers: usize) -> usize {
        match self {
            Partitioner::Hash => hash_bucket_of(key, reducers),
            Partitioner::Range { boundaries } => boundaries
                .partition_point(|b| b.as_str() <= key)
                .min(reducers.saturating_sub(1)),
        }
    }

    /// Builds a [`Partitioner::Range`] whose boundaries are the
    /// `reducers - 1` quantile cut points of `samples` (a sampled key
    /// histogram): with representative samples, every reducer receives a
    /// near-equal share of the key space.
    pub fn range_from_samples(mut samples: Vec<String>, reducers: usize) -> Partitioner {
        samples.sort();
        let boundaries = (1..reducers)
            .map(|i| {
                if samples.is_empty() {
                    String::new()
                } else {
                    samples[(i * samples.len() / reducers.max(1)).min(samples.len() - 1)].clone()
                }
            })
            .collect();
        Partitioner::Range { boundaries }
    }

    /// Submit-time validation against the job's reducer count.
    ///
    /// # Errors
    ///
    /// A human-readable description of the mismatch (boundary count or
    /// ordering) — the executor wraps it in
    /// [`crate::PywrenError::Config`].
    pub fn validate(&self, reducers: usize) -> Result<(), String> {
        let Partitioner::Range { boundaries } = self else {
            return Ok(());
        };
        if boundaries.len() + 1 != reducers {
            return Err(format!(
                "range partitioner has {} boundary point(s) but the job has {} reducer(s); \
                 expected exactly reducers - 1 = {}",
                boundaries.len(),
                reducers,
                reducers.saturating_sub(1)
            ));
        }
        // lint: allow(L009) — windows(2) yields exactly-2-element slices
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err("range partitioner boundaries must be ascending".to_owned());
        }
        Ok(())
    }

    /// Wire encoding carried in the `ShuffleMap` task descriptor.
    pub(crate) fn to_value(&self) -> Value {
        match self {
            Partitioner::Hash => Value::Null,
            Partitioner::Range { boundaries } => Value::map().with(
                "range",
                Value::List(boundaries.iter().map(|b| Value::Str(b.clone())).collect()),
            ),
        }
    }

    /// Decodes [`Partitioner::to_value`]; `None`/`Null` (payloads from
    /// older clients) is the hash partitioner.
    pub(crate) fn from_value(v: Option<&Value>) -> Result<Partitioner, String> {
        match v {
            None | Some(Value::Null) => Ok(Partitioner::Hash),
            Some(v) => {
                let bounds = v.req_list("range")?;
                let boundaries = bounds
                    .iter()
                    .map(|b| {
                        b.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "range boundary must be a string".to_owned())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Partitioner::Range { boundaries })
            }
        }
    }
}

/// Stable hash-reducer assignment for a shuffle key (FNV-ish fold, then
/// mix) — byte-identical to the seed framework's assignment, so the
/// whole-object and partitioned planes distribute keys identically.
pub(crate) fn hash_bucket_of(key: &str, reducers: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (rustwren_sim::hash::mix64(h) % reducers.max(1) as u64) as usize
}

/// Zero-pad width for reducer indices in shuffle keys: at least the legacy
/// 4 digits, widened to fit `reducers - 1` so lexicographic LIST grouping
/// never interleaves (the `{r:04}` overflow bug at >= 10,000 reducers).
pub(crate) fn reducer_pad(reducers: usize) -> usize {
    let mut digits = 1;
    let mut max_index = reducers.saturating_sub(1);
    while max_index >= 10 {
        digits += 1;
        max_index /= 10;
    }
    digits.max(4)
}

/// Key of one map task's shuffle partition for reducer `r` (whole-object
/// plane), or its relay channel name (relay exchange). The pad is derived
/// from the job's reducer count on both the write and read side.
pub(crate) fn shuffle_key(task_prefix: &str, r: usize, reducers: usize) -> String {
    format!(
        "{task_prefix}/shuffle-{r:0pad$}",
        pad = reducer_pad(reducers)
    )
}

/// Key of one map task's concatenated partition segment (partitioned
/// plane): all non-empty, non-inlined per-reducer slices in one object.
pub(crate) fn segment_key(task_prefix: &str) -> String {
    format!("{task_prefix}/shuffle-seg")
}

/// Marks partition `i` written in the status manifest's elision bitmap.
pub(crate) fn bitmap_set(bits: &mut [u8], i: usize) {
    // lint: allow(L009) — callers allocate ceil(reducers/8) bytes and pass
    // i < reducers (see write_shuffle_output)
    bits[i / 8] |= 1 << (i % 8);
}

/// Whether partition `i` is marked written in the elision bitmap.
pub(crate) fn bitmap_get(bits: &[u8], i: usize) -> bool {
    bits.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
}

/// One decoded shuffle pair: the extracted key plus the original
/// `{"k", "v"}` pair value (kept whole so regrouping is allocation-light).
pub(crate) type KeyedPair = (String, Value);

/// Merges per-dependency sorted runs into one sorted run with at most
/// `fanin` runs open per merge, over as many rounds as that budget needs
/// (the bounded-memory discipline of an external merge sort). Ties are
/// broken by run index, and each run's internal order is preserved, so for
/// any key the merged value order is: run 0's values in emission order,
/// then run 1's, … — exactly the order the legacy gather produced.
///
/// Returns the merged run and the number of merge rounds performed.
pub(crate) fn merge_runs(runs: Vec<Vec<KeyedPair>>, fanin: usize) -> (Vec<KeyedPair>, usize) {
    let fanin = fanin.max(2);
    let mut runs: Vec<Vec<KeyedPair>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let mut rounds = 0;
    while runs.len() > 1 {
        rounds += 1;
        let mut next = Vec::with_capacity(runs.len().div_ceil(fanin));
        let mut group: Vec<Vec<KeyedPair>> = Vec::with_capacity(fanin);
        for run in runs {
            group.push(run);
            if group.len() == fanin {
                next.push(merge_group(std::mem::take(&mut group)));
            }
        }
        if !group.is_empty() {
            next.push(merge_group(group));
        }
        runs = next;
    }
    (runs.pop().unwrap_or_default(), rounds)
}

/// One k-way merge of up to `fanin` sorted runs (linear head scan — the
/// fan-in is small and bounded, so a heap would be overkill). Equal keys
/// resolve to the lowest run index first.
fn merge_group(group: Vec<Vec<KeyedPair>>) -> Vec<KeyedPair> {
    let total = group.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; group.len()];
    let mut out: Vec<KeyedPair> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (g, run) in group.iter().enumerate() {
            // lint: allow(L009) — heads is group-sized; this IS the bounds guard
            if heads[g] >= run.len() {
                continue;
            }
            best = match best {
                // lint: allow(L009) — heads[g] < run.len() is guarded by the
                // continue above; indexed head scan keeps the merge allocation-free
                Some(b) if run[heads[g]].0 >= group[b][heads[b]].0 => Some(b),
                _ => Some(g),
            };
        }
        let Some(g) = best else {
            break;
        };
        // lint: allow(L009) — g came from the guarded scan above
        out.push(group[g][heads[g]].clone());
        // lint: allow(L009) — same guarded index
        heads[g] += 1;
    }
    out
}

/// Stable sort of one spill by key: equal keys keep their emission order,
/// which [`merge_runs`] then preserves across runs.
pub(crate) fn sort_run(run: &mut [KeyedPair]) {
    run.sort_by(|a, b| a.0.cmp(&b.0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pair(k: &str, v: i64) -> KeyedPair {
        (k.to_owned(), Value::map().with("k", k).with("v", v))
    }

    #[test]
    fn reducer_pad_widens_past_legacy_width() {
        assert_eq!(reducer_pad(1), 4);
        assert_eq!(reducer_pad(4), 4);
        assert_eq!(reducer_pad(9_999), 4);
        assert_eq!(reducer_pad(10_000), 4); // max index 9999 still fits
        assert_eq!(reducer_pad(10_001), 5); // index 10000 needs 5 digits
        assert_eq!(reducer_pad(100_000), 5);
    }

    #[test]
    fn shuffle_key_pad_follows_reducer_count() {
        assert_eq!(
            shuffle_key("jobs/e/1/t00000", 3, 4),
            "jobs/e/1/t00000/shuffle-0003"
        );
        assert_eq!(
            shuffle_key("jobs/e/1/t00000", 10_000, 10_001),
            "jobs/e/1/t00000/shuffle-10000"
        );
        // Keys of one job sort lexicographically in index order.
        let keys: Vec<String> = (0..10_001)
            .step_by(997)
            .map(|r| shuffle_key("p", r, 10_001))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn range_partitioner_is_monotone_and_total() {
        let p = Partitioner::Range {
            boundaries: vec!["g".into(), "p".into()],
        };
        assert_eq!(p.bucket_of("apple", 3), 0);
        assert_eq!(p.bucket_of("g", 3), 1); // boundary belongs to the right
        assert_eq!(p.bucket_of("mango", 3), 1);
        assert_eq!(p.bucket_of("zebra", 3), 2);
    }

    #[test]
    fn range_from_samples_balances_quantiles() {
        let samples: Vec<String> = (0..100).map(|i| format!("{i:03}")).collect();
        let p = Partitioner::range_from_samples(samples, 4);
        let Partitioner::Range { boundaries } = &p else {
            panic!("expected range");
        };
        assert_eq!(boundaries.len(), 3);
        assert!(p.validate(4).is_ok());
        let counts: Vec<usize> = (0..4)
            .map(|r| {
                (0..100)
                    .filter(|i| p.bucket_of(&format!("{i:03}"), 4) == r)
                    .count()
            })
            .collect();
        assert!(counts.iter().all(|&c| (20..=30).contains(&c)), "{counts:?}");
    }

    #[test]
    fn partitioner_validate_rejects_mismatch_and_disorder() {
        let p = Partitioner::Range {
            boundaries: vec!["b".into()],
        };
        assert!(p.validate(3).is_err());
        let unsorted = Partitioner::Range {
            boundaries: vec!["z".into(), "a".into()],
        };
        assert!(unsorted.validate(3).is_err());
        assert!(Partitioner::Hash.validate(3).is_ok());
    }

    #[test]
    fn partitioner_wire_roundtrip() {
        for p in [
            Partitioner::Hash,
            Partitioner::Range {
                boundaries: vec!["g".into(), "p".into()],
            },
        ] {
            let v = p.to_value();
            assert_eq!(Partitioner::from_value(Some(&v)), Ok(p));
        }
        assert_eq!(Partitioner::from_value(None), Ok(Partitioner::Hash));
    }

    #[test]
    fn bitmap_roundtrip() {
        let mut bits = vec![0u8; 2];
        bitmap_set(&mut bits, 0);
        bitmap_set(&mut bits, 9);
        assert!(bitmap_get(&bits, 0));
        assert!(!bitmap_get(&bits, 1));
        assert!(bitmap_get(&bits, 9));
        assert!(!bitmap_get(&bits, 15));
        assert!(!bitmap_get(&bits, 99)); // out of range reads as unwritten
    }

    #[test]
    fn merge_runs_counts_rounds_under_bounded_fanin() {
        let runs: Vec<Vec<KeyedPair>> = (0..5).map(|r| vec![pair(&format!("k{r}"), r)]).collect();
        let (merged, rounds) = merge_runs(runs.clone(), 2);
        assert_eq!(merged.len(), 5);
        assert_eq!(rounds, 3, "5 runs at fan-in 2: 5 -> 3 -> 2 -> 1");
        let (_, wide_rounds) = merge_runs(runs, 16);
        assert_eq!(wide_rounds, 1);
        assert_eq!(merge_runs(Vec::new(), 2), (Vec::new(), 0));
    }

    #[test]
    fn merge_preserves_per_key_run_order() {
        // Equal keys: run 0's values must come out before run 1's, each in
        // emission order — the legacy gather's exact order.
        let runs = vec![
            vec![pair("a", 1), pair("a", 2), pair("b", 10)],
            vec![pair("a", 3), pair("c", 20)],
            vec![pair("a", 4), pair("b", 11)],
        ];
        let (merged, _) = merge_runs(runs, 2);
        let got: Vec<(String, i64)> = merged
            .iter()
            .map(|(k, p)| (k.clone(), p.get("v").and_then(Value::as_i64).unwrap()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), 1),
                ("a".into(), 2),
                ("a".into(), 3),
                ("a".into(), 4),
                ("b".into(), 10),
                ("b".into(), 11),
                ("c".into(), 20),
            ]
        );
    }

    proptest! {
        /// Every key lands in exactly one in-range bucket, for both
        /// partitioners — the partition function is total and covers the
        /// key space exactly once.
        #[test]
        fn prop_partitioners_cover_every_key_exactly_once(
            keys in prop::collection::vec("[a-z]{0,8}", 1..64),
            reducers in 1usize..40,
            cuts in prop::collection::vec("[a-z]{0,8}", 0..8),
        ) {
            let mut boundaries = cuts;
            boundaries.sort();
            let range = Partitioner::Range { boundaries: boundaries.clone() };
            let range_reducers = boundaries.len() + 1;
            for p in [(Partitioner::Hash, reducers), (range, range_reducers)] {
                let (part, n) = p;
                let mut assigned = vec![0usize; keys.len()];
                let mut total = 0usize;
                for r in 0..n {
                    for (i, k) in keys.iter().enumerate() {
                        if part.bucket_of(k, n) == r {
                            assigned[i] += 1;
                            total += 1;
                        }
                    }
                }
                prop_assert_eq!(total, keys.len());
                prop_assert!(assigned.iter().all(|&c| c == 1));
            }
        }

        /// Range partitioning is monotone in the key order: sorting keys
        /// sorts their bucket indices.
        #[test]
        fn prop_range_partitioner_is_monotone(
            keys in prop::collection::vec("[a-z]{1,6}", 2..64),
            cuts in prop::collection::vec("[a-z]{1,6}", 1..6),
        ) {
            let mut boundaries = cuts;
            boundaries.sort();
            let n = boundaries.len() + 1;
            let part = Partitioner::Range { boundaries };
            let mut keys = keys;
            keys.sort();
            let buckets: Vec<usize> = keys.iter().map(|k| part.bucket_of(k, n)).collect();
            prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{:?}", buckets);
        }

        /// Multi-round merging of sorted runs is sorted, complete, and
        /// preserves per-key value order regardless of the fan-in budget.
        #[test]
        fn prop_merge_rounds_preserve_per_key_value_order(
            runs in prop::collection::vec(
                prop::collection::vec(("[a-d]{1,2}", 0i64..1000), 0..12),
                0..9,
            ),
            fanin in 2usize..6,
        ) {
            let runs: Vec<Vec<KeyedPair>> = runs
                .into_iter()
                .map(|r| {
                    let mut run: Vec<KeyedPair> =
                        r.into_iter().map(|(k, v)| pair(&k, v)).collect();
                    sort_run(&mut run);
                    run
                })
                .collect();
            let total: usize = runs.iter().map(Vec::len).sum();
            // Reference order: concatenate runs in index order per key —
            // what the legacy dep-order gather produces.
            let mut expected: std::collections::BTreeMap<String, Vec<i64>> = Default::default();
            for run in &runs {
                for (k, p) in run {
                    expected
                        .entry(k.clone())
                        .or_default()
                        .push(p.get("v").and_then(Value::as_i64).unwrap());
                }
            }
            let (merged, _) = merge_runs(runs, fanin);
            prop_assert_eq!(merged.len(), total);
            prop_assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
            let mut got: std::collections::BTreeMap<String, Vec<i64>> = Default::default();
            for (k, p) in &merged {
                got.entry(k.clone())
                    .or_default()
                    .push(p.get("v").and_then(Value::as_i64).unwrap());
            }
            prop_assert_eq!(got, expected);
        }
    }
}
