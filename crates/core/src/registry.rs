//! The function registry: Rust's stand-in for pickled user code.
//!
//! PyWren ships the user's function to the cloud by pickling it. Rust has no
//! closure serialization, so user functions are registered once under a name
//! on the [`crate::SimCloud`]; the client then ships the *name* plus a
//! function blob of the declared [`code_size`](RemoteFn::code_size) (so the
//! COS upload/download path carries realistic payloads), and the in-cloud
//! agent looks the name up at execution time.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::task::TaskCtx;
use crate::wire::Value;

/// Default modeled size of a serialized user function (pickled PyWren
/// functions are typically a few KB).
pub const DEFAULT_CODE_SIZE: u64 = 8 * 1024;

/// A user function runnable by IBM-PyWren executors.
///
/// Implemented for all `Fn(&TaskCtx, Value) -> Result<Value, String>`
/// closures; implement manually to override [`code_size`](RemoteFn::code_size).
pub trait RemoteFn: Send + Sync {
    /// Runs the function on one input.
    ///
    /// # Errors
    ///
    /// A message describing the application failure; it is recorded in the
    /// task's status object and surfaced as [`crate::PywrenError::Task`].
    fn call(&self, ctx: &TaskCtx, input: Value) -> Result<Value, String>;

    /// Modeled size in bytes of this function's serialized form (the blob
    /// uploaded to COS once per job).
    fn code_size(&self) -> u64 {
        DEFAULT_CODE_SIZE
    }
}

impl<F> RemoteFn for F
where
    F: Fn(&TaskCtx, Value) -> Result<Value, String> + Send + Sync,
{
    fn call(&self, ctx: &TaskCtx, input: Value) -> Result<Value, String> {
        self(ctx, input)
    }
}

/// Wraps a function with an explicit modeled code size.
pub struct SizedFn<F> {
    inner: F,
    code_size: u64,
}

impl<F> SizedFn<F> {
    /// Wraps `inner`, declaring its serialized form to be `code_size` bytes.
    pub fn new(inner: F, code_size: u64) -> SizedFn<F> {
        SizedFn { inner, code_size }
    }
}

impl<F> fmt::Debug for SizedFn<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SizedFn")
            .field("code_size", &self.code_size)
            .finish()
    }
}

impl<F: RemoteFn> RemoteFn for SizedFn<F> {
    fn call(&self, ctx: &TaskCtx, input: Value) -> Result<Value, String> {
        self.inner.call(ctx, input)
    }

    fn code_size(&self) -> u64 {
        self.code_size
    }
}

/// A shared name → function table. Cheap to clone.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    fns: Arc<RwLock<HashMap<String, Arc<dyn RemoteFn>>>>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry")
            // lint: allow(L011) — false positive: the read guard is a
            // temporary dropped inside the `.field(...)` expression, not held
            // to scope end as the static order rule conservatively assumes,
            // and the trailing `.finish(` edge is a name over-approximation
            .field("functions", &self.fns.read().len())
            .finish()
    }
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Registers `f` under `name`, replacing any previous function.
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: RemoteFn + 'static,
    {
        self.fns.write().insert(name.to_owned(), Arc::new(f));
    }

    /// Looks a function up by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn RemoteFn>> {
        self.fns.read().get(name).cloned()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.read().contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.fns.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_seven() -> impl RemoteFn {
        |_ctx: &TaskCtx, input: Value| {
            let x = input.as_i64().ok_or("expected int")?;
            Ok(Value::Int(x + 7))
        }
    }

    #[test]
    fn register_and_lookup() {
        let reg = FunctionRegistry::new();
        reg.register("add7", add_seven());
        assert!(reg.contains("add7"));
        assert!(!reg.contains("mul2"));
        assert!(reg.get("add7").is_some());
    }

    #[test]
    fn default_code_size_is_a_few_kb() {
        let reg = FunctionRegistry::new();
        reg.register("add7", add_seven());
        assert_eq!(
            reg.get("add7").map(|f| f.code_size()),
            Some(DEFAULT_CODE_SIZE)
        );
    }

    #[test]
    fn sized_fn_overrides_code_size() {
        let reg = FunctionRegistry::new();
        reg.register("big", SizedFn::new(add_seven(), 5 << 20));
        assert_eq!(reg.get("big").map(|f| f.code_size()), Some(5 << 20));
    }

    #[test]
    fn clones_share_registrations() {
        let reg = FunctionRegistry::new();
        let reg2 = reg.clone();
        reg.register("f", add_seven());
        assert!(reg2.contains("f"));
    }

    #[test]
    fn names_are_sorted() {
        let reg = FunctionRegistry::new();
        reg.register("zeta", add_seven());
        reg.register("alpha", add_seven());
        assert_eq!(reg.names(), vec!["alpha".to_owned(), "zeta".to_owned()]);
    }
}
