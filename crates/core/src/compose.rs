//! First-class function composition (§4.4).
//!
//! The paper describes *sequences* — `f3 = f2 ∘ f1`, realized by having
//! each function call the next via `call_async` — and *nested parallelism*
//! (functions spawning parallel sub-jobs). Nested parallelism needs no
//! special support ([`crate::TaskCtx::executor`] plus
//! [`crate::TaskCtx::futures_value`]); sequences get the helper here: a
//! pre-registered driver function that runs each stage in the cloud and
//! feeds its output to the next, so the client gets back one future for the
//! whole chain.

use crate::error::{PywrenError, Result};
use crate::executor::{Executor, GetResultOpts};
use crate::future::ResponseFuture;
use crate::registry::FunctionRegistry;
use crate::task::TaskCtx;
use crate::wire::Value;

/// Name of the pre-registered sequence driver function.
pub const SEQUENCE_FN: &str = "rustwren-sequence";

/// Registers the sequence driver on `registry` (done at cloud build).
pub(crate) fn register_sequence_driver(registry: &FunctionRegistry) {
    registry.register(SEQUENCE_FN, |ctx: &TaskCtx, input: Value| {
        let funcs = input.req_list("funcs")?;
        let value = input.get("value").cloned().unwrap_or(Value::Null);
        let Some((first, rest)) = funcs.split_first() else {
            return Ok(value); // empty chain: identity
        };
        let first = first.as_str().ok_or("function names must be strings")?;

        // Run this stage in the cloud we are already inside of.
        let exec = ctx.executor().map_err(|e| e.to_string())?;
        let fut = exec.call_async(first, value).map_err(|e| e.to_string())?;
        let mut outputs = exec
            .resolve(&[fut], &GetResultOpts::default())
            .map_err(|e| e.to_string())?;
        let output = outputs
            .pop()
            .ok_or("resolve returned no output for the stage future")?;

        if rest.is_empty() {
            return Ok(output);
        }
        // Tail-call ourselves with the remaining stages — this is exactly
        // the paper's "each function calls the next in the sequence".
        let next = Value::map()
            .with("funcs", Value::List(rest.to_vec()))
            .with("value", output);
        let fut = exec
            .call_async(SEQUENCE_FN, next)
            .map_err(|e| e.to_string())?;
        Ok(ctx.futures_value(&[fut]))
    });
}

impl Executor {
    /// Runs `funcs` as a sequence `fN ∘ … ∘ f1` on `input`, entirely inside
    /// the cloud: the client gets one future; each stage's output feeds the
    /// next stage. Non-blocking, like `call_async`.
    ///
    /// The result collected by [`get_result`](Executor::get_result) is the
    /// final stage's output. (Intermediate futures are followed
    /// transparently by the composition-aware collector.)
    ///
    /// # Errors
    ///
    /// [`PywrenError::UnknownFunction`] if any stage is unregistered
    /// (validated client-side before anything is staged), or the usual
    /// staging/invocation errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use rustwren_core::{SimCloud, TaskCtx, Value};
    ///
    /// let cloud = SimCloud::builder().build();
    /// cloud.register_fn("add7", |_: &TaskCtx, v: Value| {
    ///     Ok(Value::Int(v.as_i64().ok_or("int")? + 7))
    /// });
    /// cloud.register_fn("double", |_: &TaskCtx, v: Value| {
    ///     Ok(Value::Int(v.as_i64().ok_or("int")? * 2))
    /// });
    /// let results = cloud.run(|| {
    ///     let exec = cloud.executor().build()?;
    ///     exec.call_sequence(&["add7", "double"], Value::Int(3))?; // (3+7)*2
    ///     exec.get_result()
    /// })?;
    /// assert_eq!(results, vec![Value::Int(20)]);
    /// # Ok::<(), rustwren_core::PywrenError>(())
    /// ```
    pub fn call_sequence(&self, funcs: &[&str], input: Value) -> Result<ResponseFuture> {
        for f in funcs {
            if !self.cloud().registry().contains(f) {
                return Err(PywrenError::UnknownFunction((*f).to_owned()));
            }
        }
        let chain = Value::map()
            .with(
                "funcs",
                Value::List(funcs.iter().map(|f| Value::from(*f)).collect()),
            )
            .with("value", input);
        self.call_async(SEQUENCE_FN, chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_is_registered_on_fresh_clouds() {
        let cloud = crate::SimCloud::builder().build();
        assert!(cloud.registry().contains(SEQUENCE_FN));
    }

    #[test]
    fn unknown_stage_is_rejected_client_side() {
        let cloud = crate::SimCloud::builder().build();
        cloud.register_fn("known", |_: &TaskCtx, v: Value| Ok(v));
        cloud.run(|| {
            let exec = cloud.executor().build().unwrap();
            let err = exec
                .call_sequence(&["known", "ghost"], Value::Null)
                .unwrap_err();
            assert!(matches!(err, PywrenError::UnknownFunction(name) if name == "ghost"));
        });
    }

    #[test]
    fn empty_sequence_is_identity() {
        let cloud = crate::SimCloud::builder().build();
        let results = cloud.run(|| {
            let exec = cloud.executor().build().unwrap();
            exec.call_sequence(&[], Value::Int(9)).unwrap();
            exec.get_result().unwrap()
        });
        assert_eq!(results, vec![Value::Int(9)]);
    }
}
