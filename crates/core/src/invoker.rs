//! Invocation strategies, including massive function spawning (§5.1).
//!
//! `Direct` reproduces the original PyWren behaviour: the client issues
//! every invocation itself from a small thread pool — each call paying the
//! client's (possibly WAN) network latency. `RemoteInvoker` is the paper's
//! *massive function spawning* mechanism: the client invokes a few remote
//! invoker functions, each of which fires a group of invocations from
//! inside the cloud, collapsing 38 s of WAN spawning into ~8 s.

use std::sync::Weak;

use bytes::Bytes;
use rustwren_faas::{ActionConfig, ActivationCtx, ActivationId};

use crate::cloud::{CloudInner, SimCloud};
use crate::config::SpawnStrategy;
use crate::error::{PywrenError, Result};
use crate::job::AgentPayload;
use crate::wire::Value;

/// Name of the remote invoker system action.
pub const INVOKER_ACTION: &str = "rustwren-invoker";

/// Name of the agent action for a given runtime image.
pub fn agent_action_name(runtime: &str) -> String {
    format!("rustwren-agent@{runtime}")
}

/// Deploys the agent action for `runtime` if not already present.
pub(crate) fn deploy_agent(cloud: &SimCloud, runtime: &str) -> Result<()> {
    let name = agent_action_name(runtime);
    if cloud.functions().has_action(&name) {
        return Ok(());
    }
    let weak = cloud.downgrade();
    cloud
        .functions()
        .register_action(
            &name,
            ActionConfig::with_runtime(runtime).memory_mb(512),
            move |ctx: &ActivationCtx, payload: Bytes| crate::job::run_agent(&weak, ctx, payload),
        )
        .map_err(|e| PywrenError::UnknownFunction(format!("agent runtime: {e}")))
}

/// Deploys the remote invoker system action (called at cloud build).
pub(crate) fn deploy_invoker(cloud: &SimCloud) {
    let weak: Weak<CloudInner> = cloud.downgrade();
    cloud
        .functions()
        .register_action(
            INVOKER_ACTION,
            ActionConfig::default(),
            move |ctx: &ActivationCtx, payload: Bytes| {
                let _inner = weak
                    .upgrade()
                    .ok_or_else(|| rustwren_faas::ActionError("cloud torn down".into()))?;
                run_invoker(ctx, payload)
            },
        )
        // lint: allow(L004) — runs once at cloud build, not in an
        // activation; `build()` has no error channel, and a platform too
        // small for its own system action must fail loudly at construction
        .expect("invoker deploys on a fresh platform");
}

/// Body of the remote invoker function: fire every invocation in its group
/// from inside the cloud, over `threads` concurrent streams.
fn run_invoker(
    ctx: &ActivationCtx,
    payload: Bytes,
) -> std::result::Result<Bytes, rustwren_faas::ActionError> {
    let v = Value::decode(&payload)
        .map_err(|e| rustwren_faas::ActionError(format!("bad invoker payload: {e}")))?;
    let action = v
        .req_str("action")
        .map_err(rustwren_faas::ActionError)?
        .to_owned();
    let threads = v
        .req_i64("threads")
        .map_err(rustwren_faas::ActionError)?
        .max(1) as usize;
    let tasks: Vec<Bytes> = v
        .req_list("tasks")
        .map_err(rustwren_faas::ActionError)?
        .iter()
        .map(|t| {
            t.as_bytes()
                .map(Bytes::copy_from_slice)
                .ok_or_else(|| rustwren_faas::ActionError("task payload must be bytes".into()))
        })
        .collect::<std::result::Result<_, _>>()?;

    // Chaos invoker-kill: die before spawning the group, so none of this
    // invoker's tasks ever receives an activation — exercising the
    // client-side recovery path for tasks with no id and no status.
    crate::job::chaos_crash_point(
        crate::job::PHASE_INVOKER,
        rustwren_sim::hash::hash2(ctx.activation_id().0, 0x1412),
    );

    let client = ctx.faas_client();
    let count = tasks.len();
    let handles: Vec<_> = chunk_round_robin(tasks, threads)
        .into_iter()
        .enumerate()
        .map(|(t, chunk)| {
            let client = client.clone();
            let action = action.clone();
            rustwren_sim::spawn(format!("invoker-{t}"), move || {
                for task in chunk {
                    client.invoke(&action, task).map_err(|e| e.to_string())?;
                }
                Ok::<(), String>(())
            })
        })
        .collect();
    for h in handles {
        h.join().map_err(rustwren_faas::ActionError)?;
    }
    Ok(Value::Int(count as i64).encode())
}

/// Issues one agent invocation per payload according to `strategy`, using
/// the executor's FaaS client. Returns once every invocation is accepted,
/// with one entry per payload: the agent's [`ActivationId`] where the client
/// issued the invocation itself (`Direct`), or `None` when a remote invoker
/// issued it (the ids stay inside the cloud).
pub(crate) fn spawn_tasks(
    faas: &rustwren_faas::FaasClient,
    strategy: &SpawnStrategy,
    agent_action: &str,
    payloads: Vec<AgentPayload>,
) -> Result<Vec<Option<ActivationId>>> {
    let count = payloads.len();
    let strategy = strategy.resolve_for(count);
    match &strategy {
        // lint: allow(L009) — resolve_for never returns Auto by contract
        SpawnStrategy::Auto { .. } => unreachable!("resolve_for returns a concrete strategy"),
        SpawnStrategy::Direct { client_threads } => {
            // Degenerate values are rejected at executor build time; a zero
            // reaching this point is a bug, not something to silently clamp.
            if *client_threads == 0 {
                return Err(PywrenError::Config(
                    "spawn strategy needs at least one client thread".into(),
                ));
            }
            let encoded: Vec<Bytes> = payloads.iter().map(AgentPayload::encode).collect();
            parallel_invoke(faas, agent_action, encoded, *client_threads)
        }
        SpawnStrategy::RemoteInvoker {
            group_size,
            invoker_threads,
        } => {
            if *group_size == 0 || *invoker_threads == 0 {
                return Err(PywrenError::Config(
                    "remote invoker needs a non-zero group size and thread count".into(),
                ));
            }
            let group_size = *group_size;
            let groups: Vec<Bytes> = payloads
                .chunks(group_size)
                .map(|group| {
                    Value::map()
                        .with("action", agent_action)
                        .with("threads", *invoker_threads as i64)
                        .with(
                            "tasks",
                            Value::List(
                                group
                                    .iter()
                                    .map(|p| Value::bytes(p.encode().to_vec()))
                                    .collect(),
                            ),
                        )
                        .encode()
                })
                .collect();
            // The handful of invoker calls still leave the client over its
            // own network, from a small pool. The agent activation ids are
            // issued inside the cloud and never reported back.
            parallel_invoke(faas, INVOKER_ACTION, groups, 5)?;
            Ok(vec![None; count])
        }
    }
}

/// Invokes `action` once per payload over `threads` simulated client
/// threads; fails fast on the first unrecoverable error. Returns the
/// activation ids in payload order.
fn parallel_invoke(
    faas: &rustwren_faas::FaasClient,
    action: &str,
    payloads: Vec<Bytes>,
    threads: usize,
) -> Result<Vec<Option<ActivationId>>> {
    if payloads.is_empty() {
        return Ok(Vec::new());
    }
    let n = payloads.len();
    let threads = threads.min(n).max(1);
    let indexed: Vec<(usize, Bytes)> = payloads.into_iter().enumerate().collect();
    let handles: Vec<_> = chunk_round_robin(indexed, threads)
        .into_iter()
        .enumerate()
        .map(|(t, chunk)| {
            let client = faas.clone();
            let action = action.to_owned();
            rustwren_sim::spawn(format!("spawn-{t}"), move || {
                chunk
                    .into_iter()
                    .map(|(i, p)| client.invoke(&action, p).map(|id| (i, id)))
                    .collect::<std::result::Result<Vec<_>, rustwren_faas::InvokeError>>()
            })
        })
        .collect();
    let mut ids: Vec<Option<ActivationId>> = vec![None; n];
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(pairs) => {
                for (i, id) in pairs {
                    // lint: allow(L009) — i indexes the preallocated ids vec
                    ids[i] = Some(id);
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e.into()),
        None => Ok(ids),
    }
}

/// Distributes items into `n` chunks preserving overall order within each.
fn chunk_round_robin<T>(items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let mut chunks: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        // lint: allow(L009) — `% n` keeps the index in bounds
        chunks[i % n].push(item);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_names_are_per_runtime() {
        assert_eq!(
            agent_action_name("python-jessie:3"),
            "rustwren-agent@python-jessie:3"
        );
        assert_ne!(agent_action_name("a"), agent_action_name("b"));
    }

    #[test]
    fn chunking_covers_all_items() {
        let chunks = chunk_round_robin((0..10).collect::<Vec<_>>(), 3);
        let mut all: Vec<_> = chunks.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_with_more_threads_than_items() {
        let chunks = chunk_round_robin(vec![1, 2], 8);
        assert_eq!(chunks.len(), 2);
    }
}
