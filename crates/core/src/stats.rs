//! Timeline analysis of activation records.
//!
//! The paper's Fig 2 and Fig 3 plot "total concurrent invocations at each
//! moment". This module reconstructs those series — and summary numbers
//! like the invocation-phase duration — from the FaaS platform's
//! [`ActivationRecord`]s.

use std::time::Duration;

use rustwren_faas::ActivationRecord;
use rustwren_sim::SimInstant;
use rustwren_store::OpCounts;

/// One point of a concurrency-over-time series: `(seconds, running)`.
pub type ConcurrencyPoint = (f64, usize);

/// Per-phase COS operation counts over one executor's lifetime; see
/// [`crate::Executor::cos_op_stats`]. Each phase is a separate
/// [`OpCounts`] snapshot, so benches and tests can assert operation
/// budgets (gets/puts/lists/bytes) instead of inferring them from timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CosOpStats {
    /// Client-side staging: func blob and task-input uploads at submit.
    pub staging: OpCounts,
    /// Client-side polling and gathering: status LISTs, recovery probes,
    /// result fetches, cleanup.
    pub polling: OpCounts,
    /// In-cloud agent traffic: func/input GETs, result/status PUTs, reduce
    /// dep-watching — everything issued from inside activations.
    pub agent: OpCounts,
}

impl CosOpStats {
    /// Total COS requests across every phase.
    pub fn total_ops(&self) -> u64 {
        self.staging.total_ops() + self.polling.total_ops() + self.agent.total_ops()
    }

    /// Total payload bytes moved (in + out) across every phase.
    pub fn total_bytes(&self) -> u64 {
        let phases = [self.staging, self.polling, self.agent];
        phases.iter().map(|p| p.bytes_in + p.bytes_out).sum()
    }
}

/// Counters of one executor's automatic fault recovery (retry policy and
/// straggler speculation); see [`crate::Executor::recovery_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Failed tasks automatically re-invoked.
    pub retries: u64,
    /// Tasks whose failures exhausted the retry budget.
    pub retries_exhausted: u64,
    /// Speculative (backup) copies launched for straggler tasks.
    pub speculative_launches: u64,
    /// Error statuses the client wrote on behalf of tasks that died without
    /// reporting one (crash/timeout before the agent's status write).
    pub statuses_repaired: u64,
    /// Checksum-stamp failures that were healed by a re-fetch or task
    /// re-execution (corrupted/truncated reads caught in flight).
    pub integrity_retries: u64,
    /// Checksum-stamp failures that exhausted their refetch budget and
    /// surfaced as typed [`crate::PywrenError::Integrity`] errors.
    pub integrity_failures: u64,
    /// Staged objects deleted by [`crate::Executor::clean`].
    pub cleaned_objects: u64,
    /// Faults injected by the installed chaos engine (COS faults,
    /// corruptions, crashes, forced cold starts), `0` when no engine is
    /// installed. Lets a chaos sweep confirm its plan actually fired.
    pub faults_injected: u64,
    /// Status LISTs the recovery pass avoided by reusing the poll tick's
    /// listing snapshot instead of re-listing the same prefixes.
    pub lists_saved: u64,
    /// Retries that were wanted but denied because the job's
    /// [`crate::RetryPolicy::job_retry_budget`] was spent; the task
    /// surfaces its final error instead.
    pub retries_denied_budget: u64,
}

impl RecoveryStats {
    /// Total invocation-level recovery actions taken (retries, speculative
    /// launches, status repairs — integrity refetches are finer-grained and
    /// counted separately).
    pub fn total_actions(&self) -> u64 {
        self.retries + self.speculative_launches + self.statuses_repaired
    }
}

/// Builds the running-functions-over-time step series from execution spans.
/// Points are emitted at every start/end breakpoint, sorted by time.
pub fn concurrency_series(records: &[ActivationRecord]) -> Vec<ConcurrencyPoint> {
    let mut events: Vec<(u64, i64)> = Vec::new();
    for r in records {
        if let (Some(s), Some(e)) = (r.started, r.ended) {
            events.push((s.as_nanos(), 1));
            events.push((e.as_nanos(), -1));
        }
    }
    events.sort_unstable();
    let mut series = Vec::with_capacity(events.len());
    let mut level = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            level += events[i].1;
            i += 1;
        }
        series.push((t as f64 / 1e9, level.max(0) as usize));
    }
    series
}

/// Samples a concurrency series at fixed intervals (for plotting/printing).
pub fn sample_series(
    series: &[ConcurrencyPoint],
    step: Duration,
    until: f64,
) -> Vec<ConcurrencyPoint> {
    let step = step.as_secs_f64().max(1e-9);
    let mut out = Vec::new();
    let mut idx = 0;
    let mut level = 0;
    let mut t = 0.0;
    while t <= until + step / 2.0 {
        while idx < series.len() && series[idx].0 <= t {
            level = series[idx].1;
            idx += 1;
        }
        out.push((t, level));
        t += step;
    }
    out
}

/// Peak simultaneous running functions.
pub fn max_concurrency(records: &[ActivationRecord]) -> usize {
    concurrency_series(records)
        .into_iter()
        .map(|(_, c)| c)
        .max()
        .unwrap_or(0)
}

/// Summary of one job's spawning/execution timeline (Fig 2's phases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// When the first invocation was accepted.
    pub first_submit: SimInstant,
    /// When the last invocation was accepted.
    pub last_submit: SimInstant,
    /// When the first function began executing.
    pub first_start: SimInstant,
    /// When the last function began executing — the end of the paper's
    /// "invocation phase" (all functions up and running).
    pub last_start: SimInstant,
    /// When the last function finished — end of the experiment.
    pub last_end: SimInstant,
    /// Number of records summarized.
    pub count: usize,
    /// How many started in a cold container.
    pub cold_starts: usize,
}

impl JobReport {
    /// Builds a report over `records`, which must all have started and
    /// ended. Returns `None` for an empty or unfinished set.
    pub fn from_records(records: &[ActivationRecord]) -> Option<JobReport> {
        let mut it = records.iter().filter_map(|r| match (r.started, r.ended) {
            (Some(s), Some(e)) => Some((r, s, e)),
            _ => None,
        });
        let (first, start, end) = it.next()?;
        let mut report = JobReport {
            first_submit: first.submitted,
            last_submit: first.submitted,
            first_start: start,
            last_start: start,
            last_end: end,
            count: 1,
            cold_starts: usize::from(first.cold_start),
        };
        for (r, s, e) in it {
            report.first_submit = report.first_submit.min(r.submitted);
            report.last_submit = report.last_submit.max(r.submitted);
            report.first_start = report.first_start.min(s);
            report.last_start = report.last_start.max(s);
            report.last_end = report.last_end.max(e);
            report.count += 1;
            report.cold_starts += usize::from(r.cold_start);
        }
        Some(report)
    }

    /// Duration of the invocation phase relative to `job_start`: time until
    /// every function is up and running.
    pub fn invocation_phase(&self, job_start: SimInstant) -> Duration {
        self.last_start.duration_since(job_start)
    }

    /// Total experiment duration relative to `job_start`.
    pub fn total(&self, job_start: SimInstant) -> Duration {
        self.last_end.duration_since(job_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustwren_faas::{ActivationId, Outcome, Phase, TenantId};

    fn record(submit: f64, start: f64, end: f64) -> ActivationRecord {
        ActivationRecord {
            id: ActivationId(1),
            action: "f".into(),
            tenant: TenantId::default_namespace(),
            submitted: SimInstant::from_nanos((submit * 1e9) as u64),
            started: Some(SimInstant::from_nanos((start * 1e9) as u64)),
            ended: Some(SimInstant::from_nanos((end * 1e9) as u64)),
            phase: Phase::Done(Outcome::Success),
            cold_start: true,
            worker: Some(0),
            result: None,
            logs: Vec::new(),
        }
    }

    #[test]
    fn series_counts_overlaps() {
        let records = vec![
            record(0.0, 1.0, 5.0),
            record(0.0, 2.0, 6.0),
            record(0.0, 5.5, 7.0),
        ];
        let series = concurrency_series(&records);
        assert_eq!(
            series,
            vec![(1.0, 1), (2.0, 2), (5.0, 1), (5.5, 2), (6.0, 1), (7.0, 0),]
        );
        assert_eq!(max_concurrency(&records), 2);
    }

    #[test]
    fn simultaneous_start_end_nets_out() {
        let records = vec![record(0.0, 1.0, 2.0), record(0.0, 2.0, 3.0)];
        let series = concurrency_series(&records);
        assert_eq!(series, vec![(1.0, 1), (2.0, 1), (3.0, 0)]);
    }

    #[test]
    fn empty_records_give_empty_series() {
        assert!(concurrency_series(&[]).is_empty());
        assert_eq!(max_concurrency(&[]), 0);
        assert!(JobReport::from_records(&[]).is_none());
    }

    #[test]
    fn sampling_holds_last_level() {
        let series = vec![(1.0, 1), (2.0, 3), (4.0, 0)];
        let sampled = sample_series(&series, Duration::from_secs(1), 5.0);
        assert_eq!(
            sampled,
            vec![(0.0, 0), (1.0, 1), (2.0, 3), (3.0, 3), (4.0, 0), (5.0, 0)]
        );
    }

    #[test]
    fn job_report_aggregates_extremes() {
        let records = vec![record(0.5, 1.0, 5.0), record(0.7, 3.0, 4.0)];
        let report = JobReport::from_records(&records).expect("non-empty");
        assert_eq!(report.count, 2);
        assert_eq!(report.cold_starts, 2);
        assert_eq!(report.last_start.as_secs_f64(), 3.0);
        assert_eq!(report.last_end.as_secs_f64(), 5.0);
        let t0 = SimInstant::ZERO;
        assert_eq!(report.invocation_phase(t0).as_secs_f64(), 3.0);
        assert_eq!(report.total(t0).as_secs_f64(), 5.0);
    }
}
