//! # rustwren-core — IBM-PyWren in Rust
//!
//! A full reproduction of the serverless data-analytics framework from
//! *Serverless Data Analytics in the IBM Cloud* (Middleware Industry 2018),
//! running over simulated IBM Cloud substrates ([`rustwren_faas`],
//! [`rustwren_store`], [`rustwren_sim`]).
//!
//! The paper's Table 2 API maps directly:
//!
//! | Paper                   | Here                                        |
//! |-------------------------|---------------------------------------------|
//! | `pw.ibm_cf_executor()`  | [`SimCloud::executor`]`().build()`          |
//! | `call_async(f, data)`   | [`Executor::call_async`]                    |
//! | `map(f, data)`          | [`Executor::map`]                           |
//! | `map_reduce(mf, d, rf)` | [`Executor::map_reduce`]                    |
//! | `wait(when, futures)`   | [`Executor::wait`] with [`WaitPolicy`]      |
//! | `get_result()`          | [`Executor::get_result`]                    |
//!
//! ## Quickstart
//!
//! ```
//! use rustwren_core::{SimCloud, Value};
//!
//! let cloud = SimCloud::builder().build();
//! cloud.register_fn("my_function", |_ctx: &rustwren_core::TaskCtx, v: Value| {
//!     Ok(Value::Int(v.as_i64().ok_or("expected int")? + 7))
//! });
//! let results = cloud.run(|| {
//!     let exec = cloud.executor().build()?;              // pw.ibm_cf_executor()
//!     exec.map("my_function", [3i64.into(), 6i64.into(), 9i64.into()])?;
//!     exec.get_result()                                   // [10, 13, 16]
//! })?;
//! assert_eq!(results[0], Value::Int(10));
//! # Ok::<(), rustwren_core::PywrenError>(())
//! ```
//!
//! ## Feature map (Table 1 of the paper)
//!
//! * **Broader MapReduce** — [`Executor::map_reduce`], including
//!   [`MapReduceOpts::reducer_one_per_object`] (the `reduceByKey`-like mode).
//! * **Data discovery & partitioning** — [`partition`] module; chunk-size or
//!   object-granularity splits, newline-aligned range reads.
//! * **Composability** — [`TaskCtx::executor`] gives any running function an
//!   executor; returned future-sets are awaited transparently by
//!   [`Executor::get_result`].
//! * **Docker runtimes** — executors select a runtime image
//!   ([`ExecutorBuilder::runtime`]); custom images are shared through the
//!   platform's registry.
//! * **Massive function spawning** — [`SpawnStrategy::RemoteInvoker`]
//!   (§5.1), versus the classic [`SpawnStrategy::Direct`].
//! * **Pre-flight plan analysis** — every job is linted against the
//!   platform limits before invocation ([`AnalyzeMode`], rules W001–W008
//!   from [`rustwren_analyze`]); `Deny` mode rejects doomed plans with
//!   [`PywrenError::Plan`].
//! * **Partitioned shuffle data plane** — [`Executor::map_shuffle_reduce`]
//!   with sort-and-spill segments, hash/range [`Partitioner`]s, map-side
//!   combiners, empty-partition elision, a bounded-fan-in streaming merge
//!   on the reduce side, and a COS-vs-relay exchange ablation
//!   ([`ExchangeMode`]).
//! * **Chaos engineering & data integrity** — a deterministic
//!   fault-injection plan ([`FaultPlan`], installed via
//!   [`SimCloudBuilder::chaos`]) schedules COS outages/brownouts, payload
//!   corruption, activation crashes and cold-start storms on the virtual
//!   clock; every staged object is checksum-stamped ([`wire::stamp`]) and
//!   verified on read, surfacing corruption as typed
//!   [`PywrenError::Integrity`] errors that the [`RetryPolicy`] heals.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cloud;
pub mod compose;
mod config;
mod convert;
mod error;
mod executor;
mod future;
pub mod invoker;
mod job;
pub mod partition;
mod registry;
mod shuffle;
pub mod stats;
mod task;
pub mod wire;

pub use cloud::{SimCloud, SimCloudBuilder};
pub use compose::SEQUENCE_FN;
pub use config::{DataPathConfig, ExecutorConfig, RetryPolicy, SpawnStrategy, SpeculationConfig};
pub use convert::FromValue;
pub use error::{PywrenError, Result};
pub use executor::{
    Executor, ExecutorBuilder, GetResultOpts, MapReduceOpts, ShuffleOpts, TaskTiming,
};
pub use future::{ResponseFuture, WaitPolicy, FUTURES_MARKER};
pub use job::{PHASE_AFTER_COMPUTE, PHASE_AFTER_PUT, PHASE_BEFORE_RUN, PHASE_INVOKER};
pub use partition::{DataSource, ObjectRef};
pub use registry::{FunctionRegistry, RemoteFn, SizedFn, DEFAULT_CODE_SIZE};
pub use rustwren_analyze::{
    analyze, AnalyzeMode, CloudProfile, Diagnostic, JobPlan, PlanHints, Rule, Severity,
    ShuffleShape, SpawnProfile,
};
pub use rustwren_sim::chaos::{
    ChaosStats, CorruptMode, FaultPlan, FaultRecord, PathScope, TimeWindow,
};
pub use rustwren_store::OpCounts;
pub use shuffle::{ExchangeMode, Partitioner, ShufflePlane, MAX_REDUCERS};
pub use stats::{CosOpStats, RecoveryStats};
pub use task::TaskCtx;
pub use wire::Value;
